(** Recursive-descent parser for XPath 1.0 expressions.

    Grammar follows the W3C XPath 1.0 recommendation; precedence from
    loosest to tightest: [or], [and], equality, relational, additive,
    multiplicative, unary minus, union, path. *)

open Ast

exception Parse_error of string

type stream = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.Teof | t :: _ -> t

let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> Lexer.Teof

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  if peek st = tok then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (Lexer.token_name tok)
            (Lexer.token_name (peek st))))

let axis_of_name = function
  | "child" -> Some Child
  | "descendant" -> Some Descendant
  | "parent" -> Some Parent
  | "ancestor" -> Some Ancestor
  | "following-sibling" -> Some Following_sibling
  | "preceding-sibling" -> Some Preceding_sibling
  | "following" -> Some Following
  | "preceding" -> Some Preceding
  | "attribute" -> Some Attribute
  | "namespace" -> Some Namespace
  | "self" -> Some Self
  | "descendant-or-self" -> Some Descendant_or_self
  | "ancestor-or-self" -> Some Ancestor_or_self
  | _ -> None

let node_type_of_name = function
  | "node" -> Some Any_node
  | "text" -> Some Text_node
  | "comment" -> Some Comment_node
  | "processing-instruction" -> Some (Pi_node None)
  | _ -> None

let split_qname name =
  match String.index_opt name ':' with
  | None -> (None, name)
  | Some i -> (Some (String.sub name 0 i), String.sub name (i + 1) (String.length name - i - 1))

(* A token that can begin a step. *)
let starts_step = function
  | Lexer.Tname _ | Lexer.Tat | Lexer.Tdot | Lexer.Tdotdot | Lexer.Tstar -> true
  | _ -> false

let rec parse_or st =
  let lhs = parse_and st in
  if peek st = Lexer.Tor then (
    advance st;
    Binop (Or, lhs, parse_or st))
  else lhs

and parse_and st =
  let lhs = parse_equality st in
  if peek st = Lexer.Tand then (
    advance st;
    Binop (And, lhs, parse_and st))
  else lhs

and parse_equality st =
  let lhs = parse_relational st in
  let rec loop lhs =
    match peek st with
    | Lexer.Teq ->
        advance st;
        loop (Binop (Eq, lhs, parse_relational st))
    | Lexer.Tneq ->
        advance st;
        loop (Binop (Neq, lhs, parse_relational st))
    | _ -> lhs
  in
  loop lhs

and parse_relational st =
  let lhs = parse_additive st in
  let rec loop lhs =
    match peek st with
    | Lexer.Tlt ->
        advance st;
        loop (Binop (Lt, lhs, parse_additive st))
    | Lexer.Tleq ->
        advance st;
        loop (Binop (Leq, lhs, parse_additive st))
    | Lexer.Tgt ->
        advance st;
        loop (Binop (Gt, lhs, parse_additive st))
    | Lexer.Tgeq ->
        advance st;
        loop (Binop (Geq, lhs, parse_additive st))
    | _ -> lhs
  in
  loop lhs

and parse_additive st =
  let lhs = parse_multiplicative st in
  let rec loop lhs =
    match peek st with
    | Lexer.Tplus ->
        advance st;
        loop (Binop (Plus, lhs, parse_multiplicative st))
    | Lexer.Tminus ->
        advance st;
        loop (Binop (Minus, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop lhs

and parse_multiplicative st =
  let lhs = parse_unary st in
  let rec loop lhs =
    match peek st with
    | Lexer.Tstar ->
        advance st;
        loop (Binop (Mul, lhs, parse_unary st))
    | Lexer.Tdiv ->
        advance st;
        loop (Binop (Div, lhs, parse_unary st))
    | Lexer.Tmod ->
        advance st;
        loop (Binop (Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  if peek st = Lexer.Tminus then (
    advance st;
    Neg (parse_unary st))
  else parse_union st

and parse_union st =
  let lhs = parse_path_expr st in
  if peek st = Lexer.Tpipe then (
    advance st;
    Binop (Union, lhs, parse_union st))
  else lhs

(* PathExpr ::= LocationPath | FilterExpr (('/'|'//') RelativeLocationPath)? *)
and parse_path_expr st =
  match peek st with
  | Lexer.Tslash | Lexer.Tslashslash -> Path (parse_location_path st)
  | Lexer.Tname name when node_type_of_name (snd (split_qname name)) <> None
                          && peek2 st = Lexer.Tlparen ->
      (* node-type test starts a relative location path, not a function call *)
      Path (parse_location_path st)
  | Lexer.Tname name when peek2 st = Lexer.Tlparen -> parse_filter_expr st name
  | Lexer.Tname _ | Lexer.Tat | Lexer.Tdot | Lexer.Tdotdot -> Path (parse_location_path st)
  | Lexer.Tvar _ | Lexer.Tliteral _ | Lexer.Tnumber _ | Lexer.Tlparen ->
      parse_filter_with_primary st
  | t -> raise (Parse_error ("unexpected token " ^ Lexer.token_name t))

and parse_filter_expr st _fname =
  (* function call possibly followed by predicates and a path *)
  parse_filter_with_primary st

and parse_filter_with_primary st =
  let primary = parse_primary st in
  let preds = parse_predicates st in
  let steps =
    match peek st with
    | Lexer.Tslash ->
        advance st;
        parse_relative_steps st
    | Lexer.Tslashslash ->
        advance st;
        { axis = Descendant_or_self; test = Node_type_test Any_node; predicates = [] }
        :: parse_relative_steps st
    | _ -> []
  in
  match (primary, preds, steps) with
  | e, [], [] -> e
  | e, preds, steps -> Filter (e, preds, steps)

and parse_primary st =
  match peek st with
  | Lexer.Tvar v ->
      advance st;
      Var v
  | Lexer.Tliteral s ->
      advance st;
      Literal s
  | Lexer.Tnumber f ->
      advance st;
      Number f
  | Lexer.Tlparen ->
      advance st;
      let e = parse_or st in
      expect st Lexer.Trparen;
      e
  | Lexer.Tname fname when peek2 st = Lexer.Tlparen ->
      advance st;
      advance st;
      let args =
        if peek st = Lexer.Trparen then []
        else
          let rec loop acc =
            let e = parse_or st in
            if peek st = Lexer.Tcomma then (
              advance st;
              loop (e :: acc))
            else List.rev (e :: acc)
          in
          loop []
      in
      expect st Lexer.Trparen;
      Call (fname, args)
  | t -> raise (Parse_error ("unexpected token in primary expression: " ^ Lexer.token_name t))

and parse_predicates st =
  let rec loop acc =
    if peek st = Lexer.Tlbracket then (
      advance st;
      let e = parse_or st in
      expect st Lexer.Trbracket;
      loop (e :: acc))
    else List.rev acc
  in
  loop []

and parse_location_path st =
  match peek st with
  | Lexer.Tslash ->
      advance st;
      if starts_step (peek st) then { absolute = true; steps = parse_relative_steps st }
      else { absolute = true; steps = [] }
  | Lexer.Tslashslash ->
      advance st;
      let steps =
        { axis = Descendant_or_self; test = Node_type_test Any_node; predicates = [] }
        :: parse_relative_steps st
      in
      { absolute = true; steps }
  | _ -> { absolute = false; steps = parse_relative_steps st }

and parse_relative_steps st =
  let step = parse_step st in
  match peek st with
  | Lexer.Tslash ->
      advance st;
      step :: parse_relative_steps st
  | Lexer.Tslashslash ->
      advance st;
      step
      :: { axis = Descendant_or_self; test = Node_type_test Any_node; predicates = [] }
      :: parse_relative_steps st
  | _ -> [ step ]

and parse_step st =
  match peek st with
  | Lexer.Tdot ->
      advance st;
      { axis = Self; test = Node_type_test Any_node; predicates = [] }
  | Lexer.Tdotdot ->
      advance st;
      { axis = Parent; test = Node_type_test Any_node; predicates = [] }
  | Lexer.Tat ->
      advance st;
      let test = parse_node_test st in
      let predicates = parse_predicates st in
      { axis = Attribute; test; predicates }
  | Lexer.Tname name when peek2 st = Lexer.Tcoloncolon -> (
      match axis_of_name name with
      | Some axis ->
          advance st;
          advance st;
          let test = parse_node_test st in
          let predicates = parse_predicates st in
          { axis; test; predicates }
      | None -> raise (Parse_error (Printf.sprintf "unknown axis %S" name)))
  | _ ->
      let test = parse_node_test st in
      let predicates = parse_predicates st in
      { axis = Child; test; predicates }

and parse_node_test st =
  match peek st with
  | Lexer.Tname "*" ->
      advance st;
      Star
  | Lexer.Tname name when peek2 st = Lexer.Tlparen -> (
      let _, local = split_qname name in
      match node_type_of_name local with
      | Some nt ->
          advance st;
          advance st;
          let nt =
            match (nt, peek st) with
            | Pi_node None, Lexer.Tliteral target ->
                advance st;
                Pi_node (Some target)
            | _ -> nt
          in
          expect st Lexer.Trparen;
          Node_type_test nt
      | None -> raise (Parse_error (Printf.sprintf "unknown node type %S" name)))
  | Lexer.Tname name ->
      advance st;
      if String.length name > 2 && String.sub name (String.length name - 2) 2 = ":*" then
        Prefix_star (String.sub name 0 (String.length name - 2))
      else
        let p, l = split_qname name in
        Name_test (p, l)
  | t -> raise (Parse_error ("expected a node test, found " ^ Lexer.token_name t))

(** [parse s] parses a complete XPath 1.0 expression. *)
let parse s =
  let st = { toks = Lexer.tokenize s } in
  let e = parse_or st in
  (match peek st with
  | Lexer.Teof -> ()
  | t ->
      raise
        (Parse_error (Printf.sprintf "trailing tokens after expression: %s" (Lexer.token_name t))));
  e
