(** XPath 1.0 lexer with the §3.7 disambiguation rules: [*] is the multiply
    operator only in operand position; [and]/[or]/[div]/[mod] are operators
    only in operand position; a name before [(] is a function name, before
    [::] an axis name. *)

exception Lex_error of string

type token =
  | Tname of string  (** NCName/QName; also ["*"] and ["p:*"] name tests *)
  | Tnumber of float
  | Tliteral of string
  | Tvar of string
  | Tlparen
  | Trparen
  | Tlbracket
  | Trbracket
  | Tdot
  | Tdotdot
  | Tat
  | Tcomma
  | Tcoloncolon
  | Tslash
  | Tslashslash
  | Tpipe
  | Tplus
  | Tminus
  | Teq
  | Tneq
  | Tlt
  | Tleq
  | Tgt
  | Tgeq
  | Tstar  (** multiplication *)
  | Tand
  | Tor
  | Tdiv
  | Tmod
  | Teof

val token_name : token -> string

val tokenize : string -> token list
(** Always ends with {!Teof}.  @raise Lex_error on illegal characters or
    unterminated literals. *)
