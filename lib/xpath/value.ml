(** XPath 1.0 value model and type conversions (XPath 1.0 §3.2, §4). *)

module T = Xdb_xml.Types

type t =
  | Nodes of T.node list  (** node-set in document order, duplicates removed *)
  | Bool of bool
  | Num of float
  | Str of string

let type_name = function
  | Nodes _ -> "node-set"
  | Bool _ -> "boolean"
  | Num _ -> "number"
  | Str _ -> "string"

(** Document-order sort + physical dedup of a node list. *)
let sort_nodes nodes =
  let sorted = List.stable_sort T.compare_order nodes in
  let rec dedup = function
    | a :: (b :: _ as rest) when a == b -> dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

let nodes ns = Nodes (sort_nodes ns)

(** XPath number→string conversion: integers print without a decimal point,
    [NaN] prints as "NaN", infinities as "Infinity"/"-Infinity". *)
let string_of_number f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "Infinity"
  else if f = Float.neg_infinity then "-Infinity"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.0f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    s

let number_of_string s =
  let s = String.trim s in
  if s = "" then Float.nan
  else
    match float_of_string_opt s with
    | Some f -> f
    | None -> Float.nan

(* XPath 1.0 §4.4 round(): half rounds up, except that arguments in
   [-0.5, 0) return negative zero; NaN, ±∞ and ±0 pass through
   (is_integer covers all three pass-through cases but NaN) *)
let round_number f =
  if Float.is_nan f || Float.is_integer f then f
  else if f >= -0.5 && f < 0.0 then -0.0
  else Float.floor (f +. 0.5)

(** [string_value v] — the XPath [string()] conversion. *)
let string_value = function
  | Str s -> s
  | Num f -> string_of_number f
  | Bool b -> if b then "true" else "false"
  | Nodes [] -> ""
  | Nodes (n :: _) -> T.string_value n

(** [number_value v] — the XPath [number()] conversion. *)
let number_value = function
  | Num f -> f
  | Str s -> number_of_string s
  | Bool b -> if b then 1.0 else 0.0
  | Nodes _ as v -> number_of_string (string_value v)

(** [boolean_value v] — the XPath [boolean()] conversion. *)
let boolean_value = function
  | Bool b -> b
  | Num f -> f <> 0.0 && not (Float.is_nan f)
  | Str s -> String.length s > 0
  | Nodes ns -> ns <> []

let node_set = function
  | Nodes ns -> ns
  | v -> invalid_arg (Printf.sprintf "expected a node-set, got a %s" (type_name v))

(** XPath 1.0 §3.4 comparison semantics, handling node-set operands by
    existential quantification. *)
let compare_values op a b =
  let num_cmp op x y =
    match op with
    | `Eq -> x = y
    | `Neq -> x <> y
    | `Lt -> x < y
    | `Leq -> x <= y
    | `Gt -> x > y
    | `Geq -> x >= y
  in
  let str_cmp op (x : string) (y : string) =
    match op with
    | `Eq -> String.equal x y
    | `Neq -> not (String.equal x y)
    | `Lt | `Leq | `Gt | `Geq ->
        (* relational operators always compare as numbers *)
        num_cmp op (number_of_string x) (number_of_string y)
  in
  let flip = function
    | `Lt -> `Gt
    | `Leq -> `Geq
    | `Gt -> `Lt
    | `Geq -> `Leq
    | (`Eq | `Neq) as e -> e
  in
  (* one node-set operand vs a primitive; [op] oriented node-set-first *)
  let one_side op ns other =
    match other with
    | Num f -> List.exists (fun n -> num_cmp op (number_of_string (T.string_value n)) f) ns
    | Str s -> List.exists (fun n -> str_cmp op (T.string_value n) s) ns
    | Bool b -> num_cmp op (if ns <> [] then 1.0 else 0.0) (if b then 1.0 else 0.0)
    | Nodes _ -> assert false
  in
  match (a, b) with
  | Nodes ns1, Nodes ns2 ->
      List.exists
        (fun n1 ->
          let s1 = T.string_value n1 in
          List.exists (fun n2 -> str_cmp op s1 (T.string_value n2)) ns2)
        ns1
  | Nodes ns, other -> one_side op ns other
  | other, Nodes ns -> one_side (flip op) ns other
  | Bool _, _ | _, Bool _ ->
      num_cmp op (if boolean_value a then 1. else 0.) (if boolean_value b then 1. else 0.)
  | Num _, _ | _, Num _ -> num_cmp op (number_value a) (number_value b)
  | Str s1, Str s2 -> str_cmp op s1 s2
