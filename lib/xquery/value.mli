(** XQuery value model: sequences of items (nodes or atomics), with
    conversions to and from the XPath 1.0 value model so path predicates
    can be delegated to the XPath engine. *)

type item = Node of Xdb_xml.Types.node | Atom of Ast.atom

type t = item list

exception Xquery_type_error of string

val of_nodes : Xdb_xml.Types.node list -> t
val singleton_string : string -> t
val singleton_num : float -> t
val singleton_bool : bool -> t
val empty : t

val atom_string : Ast.atom -> string
val item_string : item -> string

val string_value : t -> string
(** String of the first item ("" when empty) — [fn:string] semantics. *)

val number_value : t -> float
val boolean_value : t -> bool
(** Effective boolean value.  @raise Xquery_type_error on multi-item
    atomic sequences. *)

val nodes_of : t -> Xdb_xml.Types.node list
(** @raise Xquery_type_error when an atomic item is present. *)

val to_xpath_value : t -> Xdb_xpath.Value.t
(** @raise Xquery_type_error for mixed/multi-item atomic sequences. *)

val of_xpath_value : Xdb_xpath.Value.t -> t

val item_matches : Ast.item_type -> item -> bool
(** [instance of] item-type test. *)

val equal : t -> t -> bool
(** Sequence equality for tests: nodes by deep structural equality. *)
