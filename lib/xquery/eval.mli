(** Dynamic evaluation of the XQuery subset over XML trees.

    Constructed content copies input nodes; adjacent atomic values join
    with single spaces and become text nodes (XQuery content semantics).
    Path steps are delegated to the XPath engine with the XQuery variable
    environment injected. *)

exception Eval_error of string

module Smap : Map.S with type key = string

type env = {
  vars : Value.t Smap.t;
  funs : Ast.fundef Smap.t;
  context : Xdb_xml.Types.node option;  (** the context item if any *)
  depth : int;  (** recursion guard *)
}

val empty_env : env
val env_with_context : Xdb_xml.Types.node -> env
val bind : env -> string -> Value.t -> env

val content_nodes : Value.t -> Xdb_xml.Types.node list
(** Sequence → constructed content: nodes deep-copied, adjacent atoms
    space-joined into text nodes. *)

val eval : env -> Ast.expr -> Value.t
(** @raise Eval_error on unbound variables, undefined functions, or
    exceeding the recursion guard. *)

val run : Ast.prog -> context:Xdb_xml.Types.node -> Value.t
(** Evaluate a full program (prolog declarations then body) against a
    context node. *)

val run_to_nodes : Ast.prog -> context:Xdb_xml.Types.node -> Xdb_xml.Types.node list
(** [run] followed by {!content_nodes} — the shape
    [XMLQuery(... RETURNING CONTENT)] yields. *)

val emit_result : Xdb_xml.Events.sink -> Value.t -> unit
(** A top-level result sequence as output events: atoms space-join into
    text events, nodes replay in place without copying — the streamed
    image of {!content_nodes}. *)

val run_serialized :
  ?meth:Xdb_xml.Events.output_method ->
  ?indent:bool ->
  Ast.prog ->
  context:Xdb_xml.Types.node ->
  string
(** Evaluate and serialize in one pass (no result-tree copy);
    byte-identical to serializing {!run_to_nodes}.  Defaults:
    [meth = Xml], [indent = false]. *)
