(** Abstract syntax for the XQuery subset targeted by the XSLT rewrite.

    The subset is exactly the language the paper's generated queries use
    (Tables 8, 12–15, 17, 19, 21): FLWOR expressions, direct and computed
    constructors, conditionals, [instance of element(n)] tests, path
    expressions, the [fn:*] functions shared with XPath, and user-defined
    functions (emitted in non-inline mode).  Path steps reuse the XPath AST
    so both languages share one XPath core, mirroring the paper's "XSLT and
    XQuery share the same XPath" observation (§3). *)

module XP = Xdb_xpath.Ast

type atom = Str of string | Num of float | Bool of bool

type item_type =
  | It_element of string option  (** [element()] / [element(name)] *)
  | It_text
  | It_comment
  | It_node
  | It_attribute of string option

type expr =
  | Seq of expr list  (** comma sequence; [Seq []] is the empty sequence *)
  | Flwor of clause list * expr  (** clauses + return *)
  | If of expr * expr * expr
  | Literal of atom
  | Var of string
  | Context_item  (** [.] *)
  | Root  (** leading [/] — root of the context item's tree *)
  | Fn_call of string * expr list  (** built-in functions, [fn:] prefix dropped *)
  | User_call of string * expr list
  | Path of expr * XP.step list  (** [base/step/…] *)
  | Direct_elem of string * (string * attr_piece list) list * expr list
      (** [<name a="…{e}…">content</name>] *)
  | Comp_elem of expr * expr  (** [element {name-expr} {content}] *)
  | Comp_attr of string * expr
  | Comp_text of expr
  | Comp_comment of expr
  | Binop of XP.binop * expr * expr
  | Neg of expr
  | Instance_of of expr * item_type
  | Quantified of { every : bool; var : string; source : expr; satisfies : expr }
      (** [some $v in src satisfies cond] / [every …] *)

and attr_piece = Attr_str of string | Attr_expr of expr

and clause =
  | For of { var : string; pos_var : string option; source : expr }
  | Let of { var : string; value : expr }
  | Where of expr
  | Order_by of (expr * bool) list  (** expr, descending? *)

type fundef = { fname : string; params : string list; body : expr }

type prog = {
  var_decls : (string * expr) list;  (** [declare variable $v := e;] in order *)
  funs : fundef list;
  body : expr;
}

let prog ?(var_decls = []) ?(funs = []) body = { var_decls; funs; body }

(** The paper's queries start with [declare variable $var000 := .;]. *)
let with_context_var name body = prog ~var_decls:[ (name, Context_item) ] body

(* --- conveniences used by the XSLT→XQuery generator ------------------- *)

let str s = Literal (Str s)
let text s = Comp_text (Literal (Str s))
let var v = Var v
let path_from base names = Path (base, List.map XP.child_step names)
let flet v value body = Flwor ([ Let { var = v; value } ], body)
let ffor v source body = Flwor ([ For { var = v; pos_var = None; source } ], body)

let fn name args = Fn_call (name, args)

(** Structural size of an expression — used by ablation benches to compare
    generated-query complexity. *)
let rec size = function
  | Seq es -> 1 + List.fold_left (fun a e -> a + size e) 0 es
  | Flwor (cs, r) ->
      1 + size r
      + List.fold_left
          (fun a c ->
            a
            +
            match c with
            | For { source; _ } -> size source
            | Let { value; _ } -> size value
            | Where e -> size e
            | Order_by keys -> List.fold_left (fun a (e, _) -> a + size e) 0 keys)
          0 cs
  | If (c, t, e) -> 1 + size c + size t + size e
  | Literal _ | Var _ | Context_item | Root -> 1
  | Fn_call (_, args) | User_call (_, args) ->
      1 + List.fold_left (fun a e -> a + size e) 0 args
  | Path (b, steps) -> 1 + size b + List.length steps
  | Direct_elem (_, attrs, content) ->
      1
      + List.fold_left
          (fun a (_, pieces) ->
            a
            + List.fold_left
                (fun a p -> a + match p with Attr_str _ -> 1 | Attr_expr e -> size e)
                0 pieces)
          0 attrs
      + List.fold_left (fun a e -> a + size e) 0 content
  | Comp_elem (n, c) -> 1 + size n + size c
  | Comp_attr (_, e) | Comp_text e | Comp_comment e | Neg e -> 1 + size e
  | Binop (_, a, b) -> 1 + size a + size b
  | Instance_of (e, _) -> 1 + size e
  | Quantified { source; satisfies; _ } -> 1 + size source + size satisfies

(** Number of user-function definitions — the paper's inline statistic
    counts queries "without any function calls". *)
let rec has_user_calls = function
  | User_call _ -> true
  | Seq es -> List.exists has_user_calls es
  | Flwor (cs, r) ->
      has_user_calls r
      || List.exists
           (function
             | For { source; _ } -> has_user_calls source
             | Let { value; _ } -> has_user_calls value
             | Where e -> has_user_calls e
             | Order_by keys -> List.exists (fun (e, _) -> has_user_calls e) keys)
           cs
  | If (c, t, e) -> has_user_calls c || has_user_calls t || has_user_calls e
  | Literal _ | Var _ | Context_item | Root -> false
  | Fn_call (_, args) -> List.exists has_user_calls args
  | Path (b, _) -> has_user_calls b
  | Direct_elem (_, attrs, content) ->
      List.exists
        (fun (_, ps) ->
          List.exists (function Attr_expr e -> has_user_calls e | Attr_str _ -> false) ps)
        attrs
      || List.exists has_user_calls content
  | Comp_elem (n, c) -> has_user_calls n || has_user_calls c
  | Comp_attr (_, e) | Comp_text e | Comp_comment e | Neg e -> has_user_calls e
  | Binop (_, a, b) -> has_user_calls a || has_user_calls b
  | Instance_of (e, _) -> has_user_calls e
  | Quantified { source; satisfies; _ } -> has_user_calls source || has_user_calls satisfies
