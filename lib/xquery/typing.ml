(** Static structural typing of XQuery results (paper §3.2, bullets 3–4:
    "If the input XMLType is computed from another XQuery/XPath, then we can
    derive the structural information based on the static typing result").

    The typer computes, for a query, the element declarations of everything
    the query can construct or forward from its input, together with the
    top-level particle list.  The result is an {!Xdb_schema.Types.t} whose
    synthetic root ["#result"] stands for the constructed forest — exactly
    what the next stage's partial evaluator needs. *)

module S = Xdb_schema.Types
module XP = Xdb_xpath.Ast
open Ast

exception Typing_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Typing_error m)) fmt

module Smap = Map.Make (String)

(** A static "type": which input-schema elements a value can range over
    (by name), or constructed content. *)
type ty = {
  elems : (string * S.occurs) list;  (** possible element names + cardinality *)
  text : bool;  (** may contain text/atomic items *)
}

let empty_ty = { elems = []; text = false }
let text_ty = { elems = []; text = true }

let union_ty a b = { elems = a.elems @ b.elems; text = a.text || b.text }

let scale_occurs (outer : S.occurs) (inner : S.occurs) : S.occurs =
  let mul_opt a b = match (a, b) with Some x, Some y -> Some (x * y) | _ -> None in
  { S.min_occurs = outer.S.min_occurs * inner.S.min_occurs;
    max_occurs = mul_opt outer.S.max_occurs inner.S.max_occurs }

let scale ty occurs = { ty with elems = List.map (fun (n, o) -> (n, scale_occurs occurs o)) ty.elems }

type env = {
  input : S.t option;  (** structural info of the context item *)
  var_tys : ty Smap.t;
  decls : (string, S.element_decl) Hashtbl.t;  (** output declarations *)
}

let copy_input_decl env name =
  (* forward an input element declaration (and its reachable subtree) into
     the output declaration table *)
  match env.input with
  | None -> ()
  | Some schema ->
      let rec go name =
        if not (Hashtbl.mem env.decls name) then
          match S.find schema name with
          | None -> ()
          | Some d ->
              Hashtbl.replace env.decls name d;
              List.iter (fun p -> go p.S.child) d.S.particles
      in
      go name

(* static evaluation of a path step against the input/declared structure *)
let step_ty env (base : ty) (step : XP.step) : ty =
  let lookup name =
    match Hashtbl.find_opt env.decls name with
    | Some d -> Some d
    | None -> ( match env.input with Some s -> S.find s name | None -> None)
  in
  let child_particles parent_name =
    match lookup parent_name with Some d -> d.S.particles | None -> []
  in
  match step.XP.axis with
  | XP.Child -> (
      match step.XP.test with
      | XP.Name_test (_, local) ->
          let hits =
            List.concat_map
              (fun (pname, pocc) ->
                List.filter_map
                  (fun p ->
                    if p.S.child = local then (
                      copy_input_decl env local;
                      Some (local, scale_occurs pocc p.S.occurs))
                    else None)
                  (child_particles pname))
              base.elems
          in
          { elems = hits; text = false }
      | XP.Star | XP.Prefix_star _ ->
          let hits =
            List.concat_map
              (fun (pname, pocc) ->
                List.map
                  (fun p ->
                    copy_input_decl env p.S.child;
                    (p.S.child, scale_occurs pocc p.S.occurs))
                  (child_particles pname))
              base.elems
          in
          { elems = hits; text = false }
      | XP.Node_type_test XP.Any_node ->
          let hits =
            List.concat_map
              (fun (pname, pocc) ->
                List.map
                  (fun p ->
                    copy_input_decl env p.S.child;
                    (p.S.child, scale_occurs pocc p.S.occurs))
                  (child_particles pname))
              base.elems
          in
          let has_text =
            List.exists
              (fun (pname, _) -> match lookup pname with Some d -> d.S.has_text | None -> false)
              base.elems
          in
          { elems = hits; text = has_text }
      | XP.Node_type_test XP.Text_node ->
          { elems = [];
            text =
              List.exists
                (fun (pname, _) -> match lookup pname with Some d -> d.S.has_text | None -> false)
                base.elems }
      | XP.Node_type_test _ -> empty_ty)
  | XP.Descendant | XP.Descendant_or_self ->
      (* conservative: all reachable declarations *)
      let seen = Hashtbl.create 16 in
      let rec reach name =
        if not (Hashtbl.mem seen name) then (
          Hashtbl.add seen name ();
          copy_input_decl env name;
          List.iter (fun p -> reach p.S.child) (child_particles name))
      in
      List.iter (fun (n, _) -> reach n) base.elems;
      let names = Hashtbl.fold (fun k () acc -> k :: acc) seen [] in
      let names =
        match step.XP.test with
        | XP.Name_test (_, local) -> List.filter (( = ) local) names
        | _ -> names
      in
      { elems = List.map (fun n -> (n, S.many)) names; text = true }
  | XP.Attribute -> text_ty
  | XP.Self -> base
  | XP.Parent | XP.Ancestor | XP.Ancestor_or_self ->
      (* rarely used in generated queries; be conservative *)
      { elems = []; text = true }
  | _ -> empty_ty

let rec infer env (e : expr) : ty =
  match e with
  | Seq es -> List.fold_left (fun acc e -> union_ty acc (infer env e)) empty_ty es
  | Literal _ -> text_ty
  | Var v -> ( match Smap.find_opt v env.var_tys with Some t -> t | None -> empty_ty)
  | Context_item | Root -> (
      match env.input with
      | Some s ->
          copy_input_decl env s.S.root;
          (* the context item is the document node wrapping the root *)
          Hashtbl.replace env.decls "#doc"
            {
              S.name = "#doc";
              group = S.Sequence;
              particles = [ { S.child = s.S.root; occurs = S.exactly_one } ];
              has_text = false;
              attrs = [];
            };
          { elems = [ ("#doc", S.exactly_one) ]; text = false }
      | None -> empty_ty)
  | If (_, t, f) ->
      let tt = infer env t and tf = infer env f in
      (* either branch: demote minima to 0 *)
      let opt t = { t with elems = List.map (fun (n, o) -> (n, { o with S.min_occurs = 0 })) t.elems } in
      union_ty (opt tt) (opt tf)
  | Neg _ | Binop _ | Instance_of _ | Quantified _ -> text_ty
  | Fn_call _ -> text_ty
  | User_call _ ->
      (* calls appear only in non-inline mode; treated opaquely *)
      { elems = []; text = true }
  | Path (base, steps) ->
      let base_ty = infer env base in
      List.fold_left (fun t s -> step_ty env t s) base_ty steps
  | Direct_elem (name, attrs, content) ->
      let content_ty =
        List.fold_left (fun acc c -> union_ty acc (infer env c)) empty_ty content
      in
      let particles =
        List.map (fun (n, o) -> { S.child = n; occurs = o }) (dedup_elems content_ty.elems)
      in
      Hashtbl.replace env.decls name
        {
          S.name;
          group = S.Sequence;
          particles;
          has_text = content_ty.text;
          attrs = List.map fst attrs;
        };
      { elems = [ (name, S.exactly_one) ]; text = false }
  | Comp_elem (name_e, content) -> (
      match name_e with
      | Literal (Str name) -> infer env (Direct_elem (name, [], [ content ]))
      | _ -> err "cannot statically type a computed element name")
  | Comp_attr _ -> empty_ty
  | Comp_text _ | Comp_comment _ -> text_ty
  | Flwor (clauses, return_) ->
      let env, multiplier =
        List.fold_left
          (fun (env, mult) clause ->
            match clause with
            | Let { var; value } ->
                ({ env with var_tys = Smap.add var (infer env value) env.var_tys }, mult)
            | For { var; pos_var; source } ->
                let src_ty = infer env source in
                (* the bound variable is a single item from the source *)
                let item_ty =
                  { src_ty with elems = List.map (fun (n, _) -> (n, S.exactly_one)) src_ty.elems }
                in
                let env = { env with var_tys = Smap.add var item_ty env.var_tys } in
                let env =
                  match pos_var with
                  | None -> env
                  | Some pv -> { env with var_tys = Smap.add pv text_ty env.var_tys }
                in
                (env, S.many)
            | Where _ ->
                (env, { mult with S.min_occurs = 0 })
            | Order_by _ -> (env, mult))
          (env, S.exactly_one) clauses
      in
      scale (infer env return_) multiplier

and dedup_elems elems =
  (* merge duplicate names, summing cardinalities *)
  let add acc (n, o) =
    match List.assoc_opt n acc with
    | None -> acc @ [ (n, o) ]
    | Some o0 ->
        let sum =
          {
            S.min_occurs = o0.S.min_occurs + o.S.min_occurs;
            max_occurs =
              (match (o0.S.max_occurs, o.S.max_occurs) with
              | Some a, Some b -> Some (a + b)
              | _ -> None);
          }
        in
        List.map (fun (n', o') -> if n' = n then (n', sum) else (n', o')) acc
  in
  List.fold_left add [] elems

(** [result_schema ?input prog] — structural info of the program's result,
    rooted at the synthetic ["#result"] element. *)
let result_schema ?input (p : prog) : S.t =
  let env = { input; var_tys = Smap.empty; decls = Hashtbl.create 16 } in
  let env =
    List.fold_left
      (fun env (v, e) -> { env with var_tys = Smap.add v (infer env e) env.var_tys })
      env p.var_decls
  in
  let top = infer env p.body in
  let particles = List.map (fun (n, o) -> { S.child = n; occurs = o }) (dedup_elems top.elems) in
  let root_decl =
    { S.name = "#result"; group = S.Sequence; particles; has_text = top.text; attrs = [] }
  in
  S.make ~root:"#result" (root_decl :: Hashtbl.fold (fun _ d acc -> d :: acc) env.decls [])
