(** Static composition of an XQuery child path over the result of another
    XQuery (paper §2.2, Example 2): push steps through the constructor
    tree without materialising the intermediate result. *)

val free_vars : Ast.expr -> Set.Make(String).t

val simplify : Ast.expr -> Ast.expr
(** Flatten/drop empty sequences, collapse trivial FLWORs, drop unused
    [let] bindings. *)

val navigate : Ast.prog -> Xdb_xpath.Ast.step list -> Ast.prog
(** [navigate prog steps] — compose a child path over [prog]'s result.
    The first step selects among top-level items; later steps select
    children.  Steps that cannot be decided statically are applied
    dynamically (still correct, no longer "combined-optimal"). *)
