(** Static composition of an XQuery path over the result of another XQuery
    (paper §2.2, Example 2: an [XMLQuery] over an XSLT view).

    [navigate prog steps] pushes child steps through the constructor tree of
    [prog]'s body without materialising the intermediate result: selecting
    [table/tr] over a query that builds [<table>…{for … return <tr>…}…</table>]
    yields just the [for … return <tr>…] part, wrapped in whatever FLWOR
    scaffolding it needs.  Where navigation cannot be decided statically the
    residual step is applied dynamically (still correct, no longer
    "combined-optimal").

    A {!val:simplify} pass then drops empty branches and unused [let]s so
    the composed query matches the shape of paper Table 11's input. *)

open Ast
module XP = Xdb_xpath.Ast

let name_test_matches test name =
  match test with
  | XP.Name_test (_, local) -> String.equal local name
  | XP.Star | XP.Prefix_star _ -> true
  | XP.Node_type_test XP.Any_node -> true
  | XP.Node_type_test _ -> false

(* top-level items of [e] matching [test] *)
let rec select_top test e =
  match e with
  | Direct_elem (name, _, _) -> if name_test_matches test name then e else Seq []
  | Comp_elem (Literal (Str name), _) -> if name_test_matches test name then e else Seq []
  | Literal _ | Comp_text _ -> (
      match test with XP.Node_type_test (XP.Text_node | XP.Any_node) -> e | _ -> Seq [])
  | Comp_comment _ -> (
      match test with XP.Node_type_test (XP.Comment_node | XP.Any_node) -> e | _ -> Seq [])
  | Comp_attr _ -> Seq []
  | Seq es -> Seq (List.map (select_top test) es)
  | Flwor (cl, ret) -> Flwor (cl, select_top test ret)
  | If (c, t, f) -> If (c, select_top test t, select_top test f)
  | e ->
      (* dynamic fallback: keep only items matching the test *)
      Path (e, [ { XP.axis = XP.Self; test; predicates = [] } ])

(* children of the element(s) denoted by [e] matching [test] *)
let rec select_children test e =
  match e with
  | Direct_elem (_, _, content) -> Seq (List.map (select_top test) content)
  | Comp_elem (Literal (Str _), content) -> select_top test content
  | Seq es -> Seq (List.map (select_children test) es)
  | Flwor (cl, ret) -> Flwor (cl, select_children test ret)
  | If (c, t, f) -> If (c, select_children test t, select_children test f)
  | Literal _ | Comp_text _ | Comp_comment _ | Comp_attr _ -> Seq []
  | e -> Path (e, [ { XP.axis = XP.Child; test; predicates = [] } ])

module SS = Set.Make (String)

(** Free variables of an expression. *)
let free_vars e =
  let rec go bound acc = function
    | Var v -> if SS.mem v bound then acc else SS.add v acc
    | Seq es -> List.fold_left (go bound) acc es
    | Flwor (clauses, ret) ->
        let bound, acc =
          List.fold_left
            (fun (bound, acc) c ->
              match c with
              | Let { var; value } -> (SS.add var bound, go bound acc value)
              | For { var; pos_var; source } ->
                  let acc = go bound acc source in
                  let bound = SS.add var bound in
                  let bound = match pos_var with Some p -> SS.add p bound | None -> bound in
                  (bound, acc)
              | Where e -> (bound, go bound acc e)
              | Order_by keys -> (bound, List.fold_left (fun a (e, _) -> go bound a e) acc keys))
            (bound, acc) clauses
        in
        go bound acc ret
    | If (c, t, f) -> go bound (go bound (go bound acc c) t) f
    | Literal _ | Context_item | Root -> acc
    | Fn_call (_, args) | User_call (_, args) -> List.fold_left (go bound) acc args
    | Path (b, steps) ->
        let acc = go bound acc b in
        (* predicates may reference variables *)
        let rec xp_vars acc = function
          | XP.Var v -> if SS.mem v bound then acc else SS.add v acc
          | XP.Binop (_, a, b) -> xp_vars (xp_vars acc a) b
          | XP.Neg e -> xp_vars acc e
          | XP.Call (_, args) -> List.fold_left xp_vars acc args
          | XP.Literal _ | XP.Number _ -> acc
          | XP.Path p -> List.fold_left step_vars acc p.XP.steps
          | XP.Filter (e, preds, steps) ->
              let acc = xp_vars acc e in
              let acc = List.fold_left xp_vars acc preds in
              List.fold_left step_vars acc steps
        and step_vars acc (s : XP.step) = List.fold_left xp_vars acc s.XP.predicates in
        List.fold_left step_vars acc steps
    | Direct_elem (_, attrs, content) ->
        let acc =
          List.fold_left
            (fun acc (_, ps) ->
              List.fold_left
                (fun acc p -> match p with Attr_expr e -> go bound acc e | Attr_str _ -> acc)
                acc ps)
            acc attrs
        in
        List.fold_left (go bound) acc content
    | Comp_elem (n, c) -> go bound (go bound acc n) c
    | Comp_attr (_, e) | Comp_text e | Comp_comment e | Neg e -> go bound acc e
    | Binop (_, a, b) -> go bound (go bound acc a) b
    | Instance_of (e, _) -> go bound acc e
    | Quantified { var; source; satisfies; _ } ->
        let acc = go bound acc source in
        go (SS.add var bound) acc satisfies
  in
  go SS.empty SS.empty e

(** Simplification: flatten/drop empty sequences, collapse trivial FLWORs,
    drop [let]s whose variable is never used. *)
let rec simplify e =
  match e with
  | Seq es -> (
      let es =
        List.concat_map
          (fun e -> match simplify e with Seq inner -> inner | e -> [ e ])
          es
      in
      match es with [ e ] -> e | es -> Seq es)
  | Flwor (clauses, ret) -> (
      let ret = simplify ret in
      let clauses =
        List.filter_map
          (fun c ->
            match c with
            | Let { var; value } ->
                let value = simplify value in
                let used =
                  SS.mem var (free_vars ret)
                  || List.exists
                       (function
                         | Let { value = v; _ } -> SS.mem var (free_vars v)
                         | For { source; _ } -> SS.mem var (free_vars source)
                         | Where w -> SS.mem var (free_vars w)
                         | Order_by ks -> List.exists (fun (k, _) -> SS.mem var (free_vars k)) ks)
                       clauses
                in
                if used then Some (Let { var; value }) else None
            | For f -> Some (For { f with source = simplify f.source })
            | Where w -> Some (Where (simplify w))
            | Order_by ks -> Some (Order_by (List.map (fun (k, d) -> (simplify k, d)) ks)))
          clauses
      in
      match (clauses, ret) with
      | [], ret -> ret
      | clauses, Seq [] -> (
          (* a FLWOR returning nothing is nothing — unless a for clause could
             still have effects; it cannot, the language is pure *)
          ignore clauses;
          Seq [])
      | clauses, ret -> Flwor (clauses, ret))
  | If (c, t, f) -> (
      match (simplify t, simplify f) with
      | Seq [], Seq [] -> Seq []
      | t, f -> If (simplify c, t, f))
  | Path (b, steps) -> Path (simplify b, steps)
  | Direct_elem (n, attrs, content) -> Direct_elem (n, attrs, List.map simplify content)
  | Comp_elem (n, c) -> Comp_elem (simplify n, simplify c)
  | Comp_attr (n, e) -> Comp_attr (n, simplify e)
  | Comp_text e -> Comp_text (simplify e)
  | Comp_comment e -> Comp_comment (simplify e)
  | Binop (op, a, b) -> Binop (op, simplify a, simplify b)
  | Neg e -> Neg (simplify e)
  | Instance_of (e, t) -> Instance_of (simplify e, t)
  | Quantified q ->
      Quantified { q with source = simplify q.source; satisfies = simplify q.satisfies }
  | Fn_call (f, args) -> Fn_call (f, List.map simplify args)
  | User_call (f, args) -> User_call (f, List.map simplify args)
  | Literal _ | Var _ | Context_item | Root -> e

(** [navigate prog steps] — compose a child-path over [prog]'s result. *)
let navigate (p : prog) (steps : XP.step list) : prog =
  let body =
    List.fold_left
      (fun acc (i, step) ->
        match (step.XP.axis, step.XP.predicates) with
        | XP.Child, [] ->
            if i = 0 then select_top step.XP.test acc else select_children step.XP.test acc
        | _ ->
            (* non-child axis or predicated step: residual dynamic step *)
            Path (acc, [ step ]))
      p.body
      (List.mapi (fun i s -> (i, s)) steps)
  in
  { p with body = simplify body }
