(** Pretty-printer: XQuery AST back to concrete syntax.  Output parses
    back with {!Parser.parse_prog} (round-trip tested) — it is the
    artifact paper Table 8 displays. *)

val expr_syntax : int -> Ast.expr -> string
(** [expr_syntax depth e] — expression at an indentation depth. *)

val fundef_syntax : Ast.fundef -> string

val prog_syntax : Ast.prog -> string
(** Full query text with prolog declarations. *)
