(** Parser for the XQuery subset.

    Char-level recursive descent with backtracking at a few decision
    points.  Handles the grammar the XSLT rewriter emits and the paper's
    printed queries (Table 8): [declare variable]/[declare function]
    prologs, FLWOR, conditionals, [instance of] tests, direct constructors
    with enclosed expressions, computed text/element/attribute
    constructors, path expressions, and nestable [(: … :)] comments.

    Path steps are built on the shared XPath AST; step predicates are
    parsed as XQuery expressions and then lowered to XPath via
    {!val:to_xpath}, which rejects constructs XPath 1.0 cannot express. *)

open Ast
module XP = Xdb_xpath.Ast

exception Parse_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = { input : string; mutable pos : int }

let peek_at st k = if st.pos + k < String.length st.input then Some st.input.[st.pos + k] else None
let peek st = peek_at st 0
let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let eat st s = if looking_at st s then st.pos <- st.pos + String.length s else err "expected %S" s

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let rec skip_ws st =
  (match peek st with
  | Some c when is_space c ->
      advance st;
      skip_ws st
  | _ -> ());
  if looking_at st "(:" then (
    (* nestable XQuery comment *)
    let depth = ref 0 in
    let continue = ref true in
    while !continue do
      if looking_at st "(:" then (
        incr depth;
        st.pos <- st.pos + 2)
      else if looking_at st ":)" then (
        decr depth;
        st.pos <- st.pos + 2;
        if !depth = 0 then continue := false)
      else if peek st = None then err "unterminated comment"
      else advance st
    done;
    skip_ws st)

let is_name_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | c -> Char.code c >= 0x80
let is_name_char c = is_name_start c || (match c with '0' .. '9' | '-' | '.' -> true | _ -> false)
let is_digit = function '0' .. '9' -> true | _ -> false

let read_name st =
  (match peek st with
  | Some c when is_name_start c -> ()
  | _ -> err "expected a name at offset %d" st.pos);
  let start = st.pos in
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* QName possibly with one ':' *)
let read_qname st =
  let n1 = read_name st in
  if peek st = Some ':' && (match peek_at st 1 with Some c -> is_name_start c | None -> false)
  then (
    advance st;
    let n2 = read_name st in
    n1 ^ ":" ^ n2)
  else n1

(* does a keyword occur here as a whole word? (no consume) *)
let at_keyword st kw =
  looking_at st kw
  &&
  match peek_at st (String.length kw) with
  | Some c -> not (is_name_char c)
  | None -> true

let eat_keyword st kw = if at_keyword st kw then st.pos <- st.pos + String.length kw else err "expected keyword %S" kw

let read_string_literal st =
  let quote = match peek st with Some ('"' as q) | Some ('\'' as q) -> q | _ -> err "expected string literal" in
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> err "unterminated string literal"
    | Some c when c = quote ->
        advance st;
        (* doubled quote = escaped quote *)
        if peek st = Some quote then (
          Buffer.add_char buf quote;
          advance st;
          go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let read_number st =
  (* at most one decimal point *)
  let start = st.pos in
  let seen_dot = ref false in
  while
    (match peek st with
    | Some c when is_digit c -> true
    | Some '.' when not !seen_dot -> true
    | _ -> false)
  do
    if peek st = Some '.' then seen_dot := true;
    advance st
  done;
  let text = String.sub st.input start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> err "malformed number %S" text

(* ------------------------------------------------------------------ *)
(* XQuery → XPath lowering for step predicates                          *)
(* ------------------------------------------------------------------ *)

let strip_fn name =
  if String.length name > 3 && String.sub name 0 3 = "fn:" then
    String.sub name 3 (String.length name - 3)
  else name

let rec to_xpath (e : expr) : XP.expr =
  match e with
  | Literal (Str s) -> XP.Literal s
  | Literal (Num f) -> XP.Number f
  | Literal (Bool b) -> XP.Call ((if b then "true" else "false"), [])
  | Var v -> XP.Var v
  | Context_item -> XP.Path { absolute = false; steps = [] }
  | Root -> XP.Path { absolute = true; steps = [] }
  | Binop (op, a, b) -> XP.Binop (op, to_xpath a, to_xpath b)
  | Neg e -> XP.Neg (to_xpath e)
  | Fn_call (name, args) -> XP.Call (name, List.map to_xpath args)
  | Path (Context_item, steps) -> XP.Path { absolute = false; steps }
  | Path (Root, steps) -> XP.Path { absolute = true; steps }
  | Path (base, steps) -> XP.Filter (to_xpath base, [], steps)
  | Seq [ e ] -> to_xpath e
  | e ->
      err "expression %s cannot appear inside a path predicate"
        (match e with
        | Flwor _ -> "FLWOR"
        | If _ -> "if"
        | Direct_elem _ -> "constructor"
        | _ -> "of this kind")

(* ------------------------------------------------------------------ *)
(* Expression grammar                                                  *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st =
  (* comma sequence *)
  let first = parse_expr_single st in
  skip_ws st;
  if peek st = Some ',' then (
    advance st;
    skip_ws st;
    match parse_expr st with Seq rest -> Seq (first :: rest) | e -> Seq [ first; e ])
  else first

and parse_expr_single st =
  skip_ws st;
  if at_keyword st "for" || at_keyword st "let" then parse_flwor st
  else if at_keyword st "some" || at_keyword st "every" then parse_quantified st
  else if at_keyword st "if" then parse_if st
  else if at_keyword st "element" then parse_comp_elem st
  else if at_keyword st "attribute" then parse_comp_attr st
  else if at_keyword st "text" && not (looking_at st "text()") then parse_comp_text st
  else if at_keyword st "comment" && not (looking_at st "comment()") then parse_comp_comment st
  else parse_or st

and parse_flwor st =
  let clauses = ref [] in
  let rec clause_loop () =
    skip_ws st;
    if at_keyword st "for" then (
      eat_keyword st "for";
      let rec vars () =
        skip_ws st;
        eat st "$";
        let v = read_qname st in
        skip_ws st;
        let pos_var =
          if at_keyword st "at" then (
            eat_keyword st "at";
            skip_ws st;
            eat st "$";
            let pv = read_qname st in
            Some pv)
          else None
        in
        skip_ws st;
        eat_keyword st "in";
        skip_ws st;
        let src = parse_expr_single st in
        clauses := For { var = v; pos_var; source = src } :: !clauses;
        skip_ws st;
        if peek st = Some ',' then (
          advance st;
          vars ())
      in
      vars ();
      clause_loop ())
    else if at_keyword st "let" then (
      eat_keyword st "let";
      let rec vars () =
        skip_ws st;
        eat st "$";
        let v = read_qname st in
        skip_ws st;
        eat st ":=";
        skip_ws st;
        let value = parse_expr_single st in
        clauses := Let { var = v; value } :: !clauses;
        skip_ws st;
        if peek st = Some ',' then (
          advance st;
          vars ())
      in
      vars ();
      clause_loop ())
    else if at_keyword st "where" then (
      eat_keyword st "where";
      skip_ws st;
      let e = parse_expr_single st in
      clauses := Where e :: !clauses;
      clause_loop ())
    else if at_keyword st "order" then (
      eat_keyword st "order";
      skip_ws st;
      eat_keyword st "by";
      let rec keys acc =
        skip_ws st;
        let k = parse_expr_single st in
        skip_ws st;
        let desc =
          if at_keyword st "descending" then (
            eat_keyword st "descending";
            true)
          else if at_keyword st "ascending" then (
            eat_keyword st "ascending";
            false)
          else false
        in
        let acc = (k, desc) :: acc in
        skip_ws st;
        if peek st = Some ',' then (
          advance st;
          keys acc)
        else List.rev acc
      in
      clauses := Order_by (keys []) :: !clauses;
      clause_loop ())
  in
  clause_loop ();
  skip_ws st;
  eat_keyword st "return";
  skip_ws st;
  let body = parse_expr_single st in
  Flwor (List.rev !clauses, body)

and parse_quantified st =
  let every =
    if at_keyword st "every" then (
      eat_keyword st "every";
      true)
    else (
      eat_keyword st "some";
      false)
  in
  skip_ws st;
  eat st "$";
  let var = read_qname st in
  skip_ws st;
  eat_keyword st "in";
  skip_ws st;
  let source = parse_expr_single st in
  skip_ws st;
  eat_keyword st "satisfies";
  skip_ws st;
  let satisfies = parse_expr_single st in
  Quantified { every; var; source; satisfies }

and parse_if st =
  eat_keyword st "if";
  skip_ws st;
  eat st "(";
  let cond = parse_expr st in
  skip_ws st;
  eat st ")";
  skip_ws st;
  eat_keyword st "then";
  let t = parse_expr_single st in
  skip_ws st;
  eat_keyword st "else";
  let f = parse_expr_single st in
  If (cond, t, f)

and parse_comp_elem st =
  eat_keyword st "element";
  skip_ws st;
  let name_e =
    if peek st = Some '{' then (
      eat st "{";
      let e = parse_expr st in
      skip_ws st;
      eat st "}";
      e)
    else Literal (Str (read_qname st))
  in
  skip_ws st;
  eat st "{";
  let content = if (skip_ws st; peek st = Some '}') then Seq [] else parse_expr st in
  skip_ws st;
  eat st "}";
  Comp_elem (name_e, content)

and parse_comp_attr st =
  eat_keyword st "attribute";
  skip_ws st;
  let name = read_qname st in
  skip_ws st;
  eat st "{";
  let e = parse_expr st in
  skip_ws st;
  eat st "}";
  Comp_attr (name, e)

and parse_comp_text st =
  eat_keyword st "text";
  skip_ws st;
  eat st "{";
  let e = parse_expr st in
  skip_ws st;
  eat st "}";
  Comp_text e

and parse_comp_comment st =
  eat_keyword st "comment";
  skip_ws st;
  eat st "{";
  let e = parse_expr st in
  skip_ws st;
  eat st "}";
  Comp_comment e

(* precedence chain *)
and parse_or st =
  let lhs = parse_and st in
  skip_ws st;
  if at_keyword st "or" then (
    eat_keyword st "or";
    Binop (XP.Or, lhs, parse_or st))
  else lhs

and parse_and st =
  let lhs = parse_comparison st in
  skip_ws st;
  if at_keyword st "and" then (
    eat_keyword st "and";
    Binop (XP.And, lhs, parse_and st))
  else lhs

and parse_comparison st =
  let lhs = parse_additive st in
  skip_ws st;
  let op =
    if looking_at st "!=" then Some XP.Neq
    else if looking_at st "<=" then Some XP.Leq
    else if looking_at st ">=" then Some XP.Geq
    else if looking_at st "=" then Some XP.Eq
    else if looking_at st "<" && peek_at st 1 <> Some '/' && not (match peek_at st 1 with Some c -> is_name_start c | None -> false)
    then Some XP.Lt
    else if looking_at st ">" then Some XP.Gt
    else if at_keyword st "eq" then Some XP.Eq
    else if at_keyword st "ne" then Some XP.Neq
    else if at_keyword st "lt" then Some XP.Lt
    else if at_keyword st "le" then Some XP.Leq
    else if at_keyword st "gt" then Some XP.Gt
    else if at_keyword st "ge" then Some XP.Geq
    else None
  in
  match op with
  | None ->
      if at_keyword st "instance" then (
        eat_keyword st "instance";
        skip_ws st;
        eat_keyword st "of";
        skip_ws st;
        Instance_of (lhs, parse_item_type st))
      else lhs
  | Some op ->
      (match op with
      | XP.Neq | XP.Leq | XP.Geq -> st.pos <- st.pos + 2
      | XP.Eq | XP.Lt | XP.Gt -> (
          if looking_at st "=" || looking_at st "<" || looking_at st ">" then advance st
          else
            (* keyword comparators: eq ne lt le gt ge *)
            let kw = String.sub st.input st.pos 2 in
            ignore kw;
            st.pos <- st.pos + 2)
      | _ -> ());
      skip_ws st;
      Binop (op, lhs, parse_additive st)

and parse_item_type st =
  skip_ws st;
  let kind = read_name st in
  skip_ws st;
  eat st "(";
  skip_ws st;
  let arg = if peek st = Some ')' then None else Some (read_qname st) in
  skip_ws st;
  eat st ")";
  match kind with
  | "element" -> It_element arg
  | "attribute" -> It_attribute arg
  | "text" -> It_text
  | "comment" -> It_comment
  | "node" -> It_node
  | k -> err "unsupported item type %s()" k

and parse_additive st =
  let lhs = parse_multiplicative st in
  let rec loop lhs =
    skip_ws st;
    if looking_at st "+" then (
      advance st;
      loop (Binop (XP.Plus, lhs, parse_multiplicative st)))
    else if looking_at st "-" && (match peek_at st 1 with Some c -> not (is_name_char c) | None -> true)
    then (
      advance st;
      loop (Binop (XP.Minus, lhs, parse_multiplicative st)))
    else lhs
  in
  loop lhs

and parse_multiplicative st =
  let lhs = parse_unary st in
  let rec loop lhs =
    skip_ws st;
    if looking_at st "*" then (
      advance st;
      loop (Binop (XP.Mul, lhs, parse_unary st)))
    else if at_keyword st "div" then (
      eat_keyword st "div";
      loop (Binop (XP.Div, lhs, parse_unary st)))
    else if at_keyword st "mod" then (
      eat_keyword st "mod";
      loop (Binop (XP.Mod, lhs, parse_unary st)))
    else lhs
  in
  loop lhs

and parse_unary st =
  skip_ws st;
  if looking_at st "-" then (
    advance st;
    Neg (parse_unary st))
  else parse_union st

and parse_union st =
  let lhs = parse_path st in
  skip_ws st;
  if looking_at st "|" then (
    advance st;
    skip_ws st;
    Binop (XP.Union, lhs, parse_union st))
  else lhs

and parse_path st =
  skip_ws st;
  if looking_at st "//" then (
    st.pos <- st.pos + 2;
    let steps =
      { XP.axis = XP.Descendant_or_self; test = XP.Node_type_test XP.Any_node; predicates = [] }
      :: parse_steps st
    in
    Path (Root, steps))
  else if looking_at st "/" && not (looking_at st "/>") then (
    advance st;
    skip_ws st;
    if starts_step st then Path (Root, parse_steps st) else Root)
  else
    let base = parse_step_or_primary st in
    continue_path st base

and continue_path st base =
  skip_ws st;
  if looking_at st "//" then (
    st.pos <- st.pos + 2;
    let steps =
      { XP.axis = XP.Descendant_or_self; test = XP.Node_type_test XP.Any_node; predicates = [] }
      :: parse_steps st
    in
    match base with
    | Path (b, s) -> Path (b, s @ steps)
    | b -> Path (b, steps))
  else if looking_at st "/" && not (looking_at st "/>") then (
    advance st;
    let steps = parse_steps st in
    match base with
    | Path (b, s) -> Path (b, s @ steps)
    | b -> Path (b, steps))
  else base

and starts_step st =
  match peek st with
  | Some c when is_name_start c -> true
  | Some '@' | Some '*' -> true
  | Some '.' -> true
  | _ -> false

and parse_steps st =
  let step = parse_one_step st in
  skip_ws st;
  if looking_at st "//" then (
    st.pos <- st.pos + 2;
    step
    :: { XP.axis = XP.Descendant_or_self; test = XP.Node_type_test XP.Any_node; predicates = [] }
    :: parse_steps st)
  else if looking_at st "/" && not (looking_at st "/>") then (
    advance st;
    skip_ws st;
    step :: parse_steps st)
  else [ step ]

and parse_one_step st =
  skip_ws st;
  if looking_at st ".." then (
    st.pos <- st.pos + 2;
    { XP.axis = XP.Parent; test = XP.Node_type_test XP.Any_node; predicates = parse_step_predicates st })
  else if looking_at st "." then (
    advance st;
    { XP.axis = XP.Self; test = XP.Node_type_test XP.Any_node; predicates = parse_step_predicates st })
  else if looking_at st "@" then (
    advance st;
    let test = parse_node_test st in
    { XP.axis = XP.Attribute; test; predicates = parse_step_predicates st })
  else
    (* possible axis:: prefix *)
    let save = st.pos in
    match peek st with
    | Some c when is_name_start c -> (
        let name = read_name st in
        if looking_at st "::" then (
          st.pos <- st.pos + 2;
          let axis =
            match Xdb_xpath.Parser.axis_of_name name with
            | Some a -> a
            | None -> err "unknown axis %s" name
          in
          let test = parse_node_test st in
          { XP.axis; test; predicates = parse_step_predicates st })
        else (
          st.pos <- save;
          let test = parse_node_test st in
          { XP.axis = XP.Child; test; predicates = parse_step_predicates st }))
    | Some '*' ->
        advance st;
        { XP.axis = XP.Child; test = XP.Star; predicates = parse_step_predicates st }
    | _ -> err "expected a path step at offset %d" st.pos

and parse_node_test st =
  skip_ws st;
  if looking_at st "*" then (
    advance st;
    XP.Star)
  else
    let name = read_qname st in
    if looking_at st "(" then (
      advance st;
      skip_ws st;
      (match name with
      | "node" ->
          eat st ")";
          XP.Node_type_test XP.Any_node
      | "text" ->
          eat st ")";
          XP.Node_type_test XP.Text_node
      | "comment" ->
          eat st ")";
          XP.Node_type_test XP.Comment_node
      | "processing-instruction" ->
          if peek st = Some ')' then (
            advance st;
            XP.Node_type_test (XP.Pi_node None))
          else
            let t = read_string_literal st in
            skip_ws st;
            eat st ")";
            XP.Node_type_test (XP.Pi_node (Some t))
      | n -> err "unknown node test %s()" n))
    else
      match String.index_opt name ':' with
      | Some i ->
          XP.Name_test
            (Some (String.sub name 0 i), String.sub name (i + 1) (String.length name - i - 1))
      | None -> XP.Name_test (None, name)

and parse_step_predicates st =
  skip_ws st;
  if looking_at st "[" then (
    advance st;
    let e = parse_expr st in
    skip_ws st;
    eat st "]";
    to_xpath e :: parse_step_predicates st)
  else []

and parse_step_or_primary st =
  skip_ws st;
  match peek st with
  | Some '$' ->
      advance st;
      let v = read_qname st in
      with_primary_predicates st (Var v)
  | Some ('"' | '\'') -> Literal (Str (read_string_literal st))
  | Some c when is_digit c -> Literal (Num (read_number st))
  | Some '.' when peek_at st 1 = Some '.' ->
      (* parent step as a path start *)
      Path (Context_item, parse_steps st)
  | Some '.' when not (match peek_at st 1 with Some c -> is_digit c | None -> false) ->
      advance st;
      with_primary_predicates st Context_item
  | Some '(' ->
      advance st;
      skip_ws st;
      if peek st = Some ')' then (
        advance st;
        with_primary_predicates st (Seq []))
      else
        let e = parse_expr st in
        skip_ws st;
        eat st ")";
        with_primary_predicates st e
  | Some '<' -> parse_direct_constructor st
  | Some '@' -> Path (Context_item, parse_steps st)
  | Some '*' -> Path (Context_item, parse_steps st)
  | Some c when is_name_start c -> (
      (* function call, keyword literal, or a path starting with a name step *)
      let save = st.pos in
      let name = read_qname st in
      skip_ws st;
      if peek st = Some '(' && name <> "node" && name <> "text" && name <> "comment"
         && name <> "processing-instruction" then (
        advance st;
        skip_ws st;
        let args =
          if peek st = Some ')' then (
            advance st;
            [])
          else
            let rec loop acc =
              let e = parse_expr_single st in
              skip_ws st;
              if peek st = Some ',' then (
                advance st;
                skip_ws st;
                loop (e :: acc))
              else (
                eat st ")";
                List.rev (e :: acc))
            in
            loop []
        in
        let call =
          match name with
          | "fn:true" | "true" when args = [] -> Literal (Bool true)
          | "fn:false" | "false" when args = [] -> Literal (Bool false)
          | _ ->
              if String.length name > 6 && String.sub name 0 6 = "local:" then
                User_call (String.sub name 6 (String.length name - 6), args)
              else Fn_call (strip_fn name, args)
        in
        with_primary_predicates st call)
      else (
        st.pos <- save;
        Path (Context_item, parse_steps st)))
  | _ -> err "unexpected character at offset %d" st.pos

(* trailing [pred] on a primary: lower into a Path over self with predicates
   is wrong for positional preds on sequences; we only support boolean use *)
and with_primary_predicates st primary =
  skip_ws st;
  if looking_at st "[" then (
    advance st;
    let p = parse_expr st in
    skip_ws st;
    eat st "]";
    (* model as a self::node() step with the predicate *)
    let step = { XP.axis = XP.Self; test = XP.Node_type_test XP.Any_node; predicates = [ to_xpath p ] } in
    with_primary_predicates st (Path (primary, [ step ])))
  else primary

(* ------------------------------------------------------------------ *)
(* Direct constructors                                                 *)
(* ------------------------------------------------------------------ *)

and parse_direct_constructor st =
  eat st "<";
  let name = read_qname st in
  (* attributes *)
  let attrs = ref [] in
  let rec attr_loop () =
    skip_ws st;
    match peek st with
    | Some c when is_name_start c ->
        let an = read_qname st in
        skip_ws st;
        eat st "=";
        skip_ws st;
        let quote = match peek st with Some ('"' as q) | Some ('\'' as q) -> q | _ -> err "expected attribute value" in
        advance st;
        let pieces = ref [] in
        let buf = Buffer.create 16 in
        let flush () =
          if Buffer.length buf > 0 then (
            pieces := Attr_str (Buffer.contents buf) :: !pieces;
            Buffer.clear buf)
        in
        let rec val_loop () =
          match peek st with
          | None -> err "unterminated attribute value"
          | Some c when c = quote ->
              advance st;
              flush ()
          | Some '{' when peek_at st 1 = Some '{' ->
              st.pos <- st.pos + 2;
              Buffer.add_char buf '{';
              val_loop ()
          | Some '{' ->
              advance st;
              flush ();
              let e = parse_expr st in
              skip_ws st;
              eat st "}";
              pieces := Attr_expr e :: !pieces;
              val_loop ()
          | Some c ->
              advance st;
              Buffer.add_char buf c;
              val_loop ()
        in
        val_loop ();
        attrs := (an, List.rev !pieces) :: !attrs;
        attr_loop ()
    | _ -> ()
  in
  attr_loop ();
  skip_ws st;
  if looking_at st "/>" then (
    st.pos <- st.pos + 2;
    Direct_elem (name, List.rev !attrs, []))
  else (
    eat st ">";
    let content = parse_elem_content st name in
    Direct_elem (name, List.rev !attrs, content))

and parse_elem_content st close_name =
  let out = ref [] in
  let buf = Buffer.create 32 in
  let flush () =
    if Buffer.length buf > 0 then (
      let s = Buffer.contents buf in
      (* boundary-space strip: drop whitespace-only literal text *)
      if String.trim s <> "" then out := Literal (Str s) :: !out;
      Buffer.clear buf)
  in
  let rec go () =
    match peek st with
    | None -> err "unterminated element <%s>" close_name
    | Some '<' when looking_at st "</" ->
        flush ();
        st.pos <- st.pos + 2;
        let n = read_qname st in
        if n <> close_name then err "mismatched </%s>, expected </%s>" n close_name;
        skip_ws st;
        eat st ">"
    | Some '<' when looking_at st "<!--" ->
        flush ();
        st.pos <- st.pos + 4;
        let start = st.pos in
        while not (looking_at st "-->") && peek st <> None do
          advance st
        done;
        let c = String.sub st.input start (st.pos - start) in
        eat st "-->";
        out := Comp_comment (Literal (Str c)) :: !out;
        go ()
    | Some '<' ->
        flush ();
        out := parse_direct_constructor st :: !out;
        go ()
    | Some '{' when peek_at st 1 = Some '{' ->
        st.pos <- st.pos + 2;
        Buffer.add_char buf '{';
        go ()
    | Some '}' when peek_at st 1 = Some '}' ->
        st.pos <- st.pos + 2;
        Buffer.add_char buf '}';
        go ()
    | Some '{' ->
        advance st;
        flush ();
        let e = parse_expr st in
        skip_ws st;
        eat st "}";
        out := e :: !out;
        go ()
    | Some '&' ->
        (* minimal entity support in constructor content *)
        advance st;
        let ent = read_name st in
        eat st ";";
        Buffer.add_string buf
          (match ent with
          | "lt" -> "<"
          | "gt" -> ">"
          | "amp" -> "&"
          | "apos" -> "'"
          | "quot" -> "\""
          | e -> err "unknown entity &%s;" e);
        go ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Prolog + program                                                    *)
(* ------------------------------------------------------------------ *)

let parse_prolog st =
  let var_decls = ref [] and funs = ref [] in
  let rec loop () =
    skip_ws st;
    if at_keyword st "declare" then (
      eat_keyword st "declare";
      skip_ws st;
      if at_keyword st "variable" then (
        eat_keyword st "variable";
        skip_ws st;
        eat st "$";
        let v = read_qname st in
        skip_ws st;
        eat st ":=";
        skip_ws st;
        let e = parse_expr_single st in
        skip_ws st;
        eat st ";";
        var_decls := (v, e) :: !var_decls;
        loop ())
      else if at_keyword st "function" then (
        eat_keyword st "function";
        skip_ws st;
        let raw = read_qname st in
        let fname =
          if String.length raw > 6 && String.sub raw 0 6 = "local:" then
            String.sub raw 6 (String.length raw - 6)
          else raw
        in
        skip_ws st;
        eat st "(";
        skip_ws st;
        let params =
          if peek st = Some ')' then (
            advance st;
            [])
          else
            let rec ps acc =
              skip_ws st;
              eat st "$";
              let p = read_qname st in
              skip_ws st;
              if peek st = Some ',' then (
                advance st;
                ps (p :: acc))
              else (
                eat st ")";
                List.rev (p :: acc))
            in
            ps []
        in
        skip_ws st;
        eat st "{";
        let body = parse_expr st in
        skip_ws st;
        eat st "}";
        skip_ws st;
        eat st ";";
        funs := { fname; params; body } :: !funs;
        loop ())
      else err "expected 'variable' or 'function' after 'declare'")
  in
  loop ();
  (List.rev !var_decls, List.rev !funs)

(** [parse_prog s] parses a complete query (prolog + body). *)
let parse_prog s =
  let st = { input = s; pos = 0 } in
  let var_decls, funs = parse_prolog st in
  let body = parse_expr st in
  skip_ws st;
  if st.pos <> String.length s then err "trailing input at offset %d" st.pos;
  { var_decls; funs; body }

(** [parse s] parses a single expression (no prolog). *)
let parse s =
  let p = parse_prog s in
  if p.var_decls <> [] || p.funs <> [] then err "unexpected prolog in expression";
  p.body
