(** XQuery → SQL/XML rewrite over a published XMLType view (paper §2.1,
    Tables 7 and 11; the [3,4] machinery the paper builds on).

    Path steps resolve statically into the publishing spec; crossing an
    [XMLAgg] introduces a correlated subquery over the detail table; XPath
    value predicates become relational predicates eligible for B-tree
    probes.  Queries outside the supported fragment raise
    {!Not_rewritable}; the pipeline then falls back to dynamic XQuery
    evaluation over the materialised document. *)

exception Not_rewritable of string

val rewrite_prog : Xdb_rel.Publish.view -> Ast.prog -> Xdb_rel.Algebra.expr
(** The per-row SQL/XML expression equivalent to running the program with
    one view document as context item.
    @raise Not_rewritable outside the supported fragment. *)

val rewrite_view_plan :
  ?timer:(string -> (unit -> Xdb_rel.Algebra.plan) -> Xdb_rel.Algebra.plan) ->
  Xdb_rel.Database.t ->
  Xdb_rel.Publish.view ->
  Ast.prog ->
  Xdb_rel.Algebra.plan
(** Full relational plan: one [result] XML column per base-table row,
    optimised (index selection on pushed-down predicates).  [timer] wraps
    each optimiser pass ({!Xdb_rel.Optimizer.optimize}) so callers can
    record per-pass planning time. *)
