(** Pretty-printer: XQuery AST back to concrete syntax.

    Output is valid input for {!Parser.parse_prog} (round-trip tested) and
    is what the CLI's [--show-xquery] prints — the artifact paper Table 8
    displays. *)

open Ast
module XP = Xdb_xpath.Ast

let escape_string s =
  let buf = Buffer.create (String.length s) in
  String.iter (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c) s;
  Buffer.contents buf

let atom_syntax = function
  | Str s -> "\"" ^ escape_string s ^ "\""
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
      else string_of_float f
  | Bool b -> if b then "fn:true()" else "fn:false()"

let item_type_syntax = function
  | It_element None -> "element()"
  | It_element (Some n) -> Printf.sprintf "element(%s)" n
  | It_text -> "text()"
  | It_comment -> "comment()"
  | It_node -> "node()"
  | It_attribute None -> "attribute()"
  | It_attribute (Some n) -> Printf.sprintf "attribute(%s)" n

let indent depth = String.make (2 * depth) ' '

let rec expr_syntax depth e =
  let ind = indent depth in
  match e with
  | Seq [] -> "()"
  | Seq es ->
      "(\n"
      ^ String.concat ",\n" (List.map (fun e -> indent (depth + 1) ^ expr_syntax (depth + 1) e) es)
      ^ "\n" ^ ind ^ ")"
  | Literal a -> atom_syntax a
  | Var v -> "$" ^ v
  | Context_item -> "."
  | Root -> "/"
  | If (c, t, Seq []) ->
      Printf.sprintf "if (%s) then %s else ()" (expr_syntax depth c) (expr_syntax depth t)
  | If (c, t, f) ->
      Printf.sprintf "if (%s) then\n%s%s\n%selse\n%s%s" (expr_syntax depth c)
        (indent (depth + 1))
        (expr_syntax (depth + 1) t)
        ind
        (indent (depth + 1))
        (expr_syntax (depth + 1) f)
  | Neg e -> "-" ^ expr_syntax depth e
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_syntax depth a) (XP.binop_name op) (expr_syntax depth b)
  | Instance_of (e, it) ->
      Printf.sprintf "(%s instance of %s)" (expr_syntax depth e) (item_type_syntax it)
  | Fn_call (name, args) ->
      Printf.sprintf "fn:%s(%s)" name (String.concat ", " (List.map (expr_syntax depth) args))
  | User_call (name, args) ->
      Printf.sprintf "local:%s(%s)" name (String.concat ", " (List.map (expr_syntax depth) args))
  | Path (base, steps) ->
      let base_s =
        match base with
        | Var v -> "$" ^ v
        | Context_item -> "."
        | Root -> ""
        | e -> "(" ^ expr_syntax depth e ^ ")"
      in
      base_s ^ "/" ^ String.concat "/" (List.map XP.step_to_string steps)
  | Direct_elem (name, attrs, content) ->
      let attr_s =
        String.concat ""
          (List.map
             (fun (an, pieces) ->
               let val_s =
                 String.concat ""
                   (List.map
                      (function
                        | Attr_str s -> s
                        | Attr_expr e -> "{" ^ expr_syntax depth e ^ "}")
                      pieces)
               in
               Printf.sprintf " %s=\"%s\"" an val_s)
             attrs)
      in
      if content = [] then Printf.sprintf "<%s%s/>" name attr_s
      else
        let body =
          String.concat ""
            (List.map
               (fun c ->
                 match c with
                 | Literal (Str s) -> s
                 | e -> "{" ^ expr_syntax (depth + 1) e ^ "}")
               content)
        in
        Printf.sprintf "<%s%s>%s</%s>" name attr_s body name
  | Comp_elem (n, c) ->
      Printf.sprintf "element {%s} {%s}" (expr_syntax depth n) (expr_syntax depth c)
  | Comp_attr (n, e) -> Printf.sprintf "attribute %s {%s}" n (expr_syntax depth e)
  | Comp_text e -> Printf.sprintf "text {%s}" (expr_syntax depth e)
  | Comp_comment e -> Printf.sprintf "comment {%s}" (expr_syntax depth e)
  | Quantified { every; var; source; satisfies } ->
      Printf.sprintf "(%s $%s in %s satisfies %s)"
        (if every then "every" else "some")
        var (expr_syntax depth source) (expr_syntax depth satisfies)
  | Flwor (clauses, return_) ->
      let clause_s c =
        match c with
        | For { var; pos_var = None; source } ->
            Printf.sprintf "for $%s in %s" var (expr_syntax depth source)
        | For { var; pos_var = Some pv; source } ->
            Printf.sprintf "for $%s at $%s in %s" var pv (expr_syntax depth source)
        | Let { var; value } -> Printf.sprintf "let $%s := %s" var (expr_syntax depth value)
        | Where e -> "where " ^ expr_syntax depth e
        | Order_by keys ->
            "order by "
            ^ String.concat ", "
                (List.map
                   (fun (k, desc) -> expr_syntax depth k ^ if desc then " descending" else "")
                   keys)
      in
      String.concat ("\n" ^ ind) (List.map clause_s clauses)
      ^ "\n" ^ ind ^ "return\n"
      ^ indent (depth + 1)
      ^ expr_syntax (depth + 1) return_

let fundef_syntax (f : fundef) =
  Printf.sprintf "declare function local:%s(%s) {\n  %s\n};" f.fname
    (String.concat ", " (List.map (fun p -> "$" ^ p) f.params))
    (expr_syntax 1 f.body)

(** [prog_syntax p] — full query text with declarations. *)
let prog_syntax (p : prog) =
  let decls =
    List.map
      (fun (v, e) -> Printf.sprintf "declare variable $%s := %s;" v (expr_syntax 0 e))
      p.var_decls
  in
  let funs = List.map fundef_syntax p.funs in
  String.concat "\n" (decls @ funs @ [ expr_syntax 0 p.body ])
