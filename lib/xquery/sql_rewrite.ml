(** XQuery → SQL/XML rewrite over a published XMLType view (the paper's
    second rewrite stage, after XSLT→XQuery: §2.1, Tables 7 and 11; the
    technique of [3, 4] the paper builds on).

    Given a query whose context item is one document of a
    {!Xdb_rel.Publish.view}, produce a relational expression over the view's
    base tables that constructs the same result with SQL/XML publishing
    operators — never materialising the input document.  Path steps resolve
    statically into the publishing spec; crossing an [XMLAgg] introduces a
    correlated subquery over the detail table; XPath value predicates
    become relational predicates the optimiser can turn into B-tree
    probes.

    Anything outside the supported fragment raises {!Not_rewritable}; the
    pipeline then falls back to dynamic XQuery evaluation over the
    materialised document (functionally correct, no longer index-driven). *)

module A = Xdb_rel.Algebra
module P = Xdb_rel.Publish
module V = Xdb_rel.Value
module XP = Xdb_xpath.Ast
open Ast

exception Not_rewritable of string

let fail fmt = Printf.ksprintf (fun m -> raise (Not_rewritable m)) fmt

module Smap = Map.Make (String)

(** An [XMLAgg] layer crossed during navigation but not yet turned into a
    subquery by a [for] clause. *)
type layer = {
  table : string;
  alias : string;
  parent_alias : string;  (** scope whose columns the correlation references *)
  correlate : (string * string) list;
  mutable where : A.expr list;  (** accumulated sargable predicates *)
  order_by : (string * A.order_dir) list;
}

type loc = {
  spec : P.spec;  (** an [Elem] (or the synthetic document wrapper) *)
  pending : layer list;  (** agg layers crossed, outermost first *)
  scope_alias : string;  (** alias providing this spec's columns *)
}

type binding = Loc of loc | Sql of A.expr

type env = { view : P.view; vars : binding Smap.t }

let root_loc view =
  {
    spec = P.Elem { name = "#doc"; attrs = []; content = [ view.P.spec ] };
    pending = [];
    scope_alias = view.P.base_alias;
  }

(* ------------------------------------------------------------------ *)
(* XPath predicate → SQL over the columns of an element spec            *)
(* ------------------------------------------------------------------ *)

(* scalar column reachable by a child-name path inside [spec] *)
let rec scalar_of_path spec alias (steps : XP.step list) : A.expr =
  match steps with
  | [] -> (
      match P.scalar_column spec with
      | Some c -> A.Col (Some alias, c)
      | None -> fail "element %s has no scalar content"
                  (Option.value ~default:"?" (P.spec_elem_name spec)))
  | { XP.axis = XP.Child; test = XP.Name_test (_, name); predicates = [] } :: rest -> (
      match P.navigate spec name with
      | Some (P.Elem _ as child) -> scalar_of_path child alias rest
      | Some (P.Agg _) -> fail "cannot use unbounded child %s as a scalar" name
      | _ -> fail "no child element %s in the publishing spec" name)
  | { XP.axis = XP.Self; predicates = []; _ } :: rest -> scalar_of_path spec alias rest
  | _ -> fail "unsupported step inside a value predicate"

let xpath_atom spec alias (e : XP.expr) : A.expr =
  match e with
  | XP.Literal s -> A.Const (V.Str s)
  | XP.Number f ->
      if Float.is_integer f then A.Const (V.Int (int_of_float f)) else A.Const (V.Float f)
  | XP.Path p when not p.XP.absolute -> scalar_of_path spec alias p.XP.steps
  | XP.Call ("string", [ XP.Path p ]) when not p.XP.absolute ->
      scalar_of_path spec alias p.XP.steps
  | XP.Call ("number", [ XP.Path p ]) when not p.XP.absolute ->
      scalar_of_path spec alias p.XP.steps
  | _ -> fail "unsupported operand in a value predicate"

let rec xpath_pred_to_sql spec alias (e : XP.expr) : A.expr =
  match e with
  | XP.Binop (XP.And, a, b) ->
      A.Binop (A.And, xpath_pred_to_sql spec alias a, xpath_pred_to_sql spec alias b)
  | XP.Binop (XP.Or, a, b) ->
      A.Binop (A.Or, xpath_pred_to_sql spec alias a, xpath_pred_to_sql spec alias b)
  | XP.Binop (op, a, b) ->
      let sql_op =
        match op with
        | XP.Eq -> A.Eq
        | XP.Neq -> A.Neq
        | XP.Lt -> A.Lt
        | XP.Leq -> A.Leq
        | XP.Gt -> A.Gt
        | XP.Geq -> A.Geq
        | _ -> fail "unsupported operator in a value predicate"
      in
      A.Binop (sql_op, xpath_atom spec alias a, xpath_atom spec alias b)
  | XP.Call ("not", [ inner ]) -> A.Not (xpath_pred_to_sql spec alias inner)
  | XP.Path p when not p.XP.absolute ->
      (* existence of a scalar child: NOT NULL *)
      A.Not (A.Is_null (scalar_of_path spec alias p.XP.steps))
  | _ -> fail "unsupported predicate form"

(* ------------------------------------------------------------------ *)
(* Navigation                                                          *)
(* ------------------------------------------------------------------ *)

let navigate_child (l : loc) (step : XP.step) : loc =
  let name =
    match step.XP.test with
    | XP.Name_test (_, n) -> n
    | _ -> fail "only name tests are supported in rewritable paths"
  in
  (match step.XP.axis with
  | XP.Child -> ()
  | a -> fail "axis %s is not rewritable" (XP.axis_name a));
  match P.navigate l.spec name with
  | Some (P.Elem _ as child) ->
      if step.XP.predicates <> [] then fail "predicate on a singleton element";
      { l with spec = child }
  | Some (P.Agg a) ->
      let layer =
        {
          table = a.table;
          alias = a.alias;
          parent_alias = l.scope_alias;
          correlate = a.correlate;
          where =
            (match a.where with Some w -> [ w ] | None -> [])
            @ List.map (fun p -> xpath_pred_to_sql a.body a.alias p) step.XP.predicates;
          order_by = a.order_by;
        }
      in
      { spec = a.body; pending = l.pending @ [ layer ]; scope_alias = a.alias }
  | Some _ | None -> fail "no child element %s in the publishing spec" name

(* plan over a chain of crossed layers: nested-loop joins in document order *)
let rec layers_plan = function
  | [] -> invalid_arg "layers_plan: empty"
  | [ l ] -> layer_plan l
  | l :: rest ->
      List.fold_left
        (fun acc next -> A.Nested_loop { outer = acc; inner = layer_plan next; join_cond = None })
        (layer_plan l) rest

and layer_plan (layer : layer) : A.plan =
  let corr =
    List.map
      (fun (inner, outer) ->
        A.Binop (A.Eq, A.Col (Some layer.alias, inner), A.Col (Some layer.parent_alias, outer)))
      layer.correlate
  in
  let conds = corr @ layer.where in
  let scan = A.Seq_scan { table = layer.table; alias = layer.alias } in
  match conds with
  | [] -> scan
  | c :: rest -> A.Filter (List.fold_left (fun acc x -> A.Binop (A.And, acc, x)) c rest, scan)

(* ------------------------------------------------------------------ *)
(* Expression translation                                              *)
(* ------------------------------------------------------------------ *)

let rec resolve env (e : expr) : binding =
  match e with
  | Var v -> (
      match Smap.find_opt v env.vars with
      | Some b -> b
      | None -> fail "unbound variable $%s" v)
  | Context_item | Root -> Loc (root_loc env.view)
  | Path (base, steps) -> (
      match resolve env base with
      | Loc l -> Loc (List.fold_left navigate_child l steps)
      | Sql _ -> fail "cannot navigate into a computed value")
  | Seq [ e ] -> resolve env e
  | e -> Sql (tr env e)

and loc_of env e =
  match resolve env e with
  | Loc l -> l
  | Sql _ -> fail "expected a node location"

(* scalar translation: a single atomic value *)
and tr_scalar env (e : expr) : A.expr =
  match e with
  | Literal (Str s) -> A.Const (V.Str s)
  | Literal (Num f) ->
      if Float.is_integer f then A.Const (V.Int (int_of_float f)) else A.Const (V.Float f)
  | Literal (Bool b) -> A.Const (V.Int (if b then 1 else 0))
  | Fn_call ("string", [ arg ]) | Fn_call ("data", [ arg ]) -> tr_scalar env arg
  | Comp_text inner -> tr_scalar env inner
  | Seq [ single ] -> tr_scalar env single
  | Seq pieces -> A.Fn ("concat", List.map (tr_scalar env) pieces)
  | Fn_call ("concat", args) -> A.Fn ("concat", List.map (tr_scalar env) args)
  | Fn_call ("number", [ arg ]) -> tr_scalar env arg
  | Fn_call (("count" | "sum" | "avg" | "min" | "max"), _) -> tr_agg env e
  | Fn_call (("round" | "floor" | "ceiling") as f, [ arg ]) -> A.Fn (f, [ tr_scalar env arg ])
  | Binop ((XP.Plus | XP.Minus | XP.Mul | XP.Div | XP.Mod) as op, a, b) ->
      let sql_op =
        match op with
        | XP.Plus -> A.Add
        | XP.Minus -> A.Sub
        | XP.Mul -> A.Mul
        | XP.Div -> A.Fdiv
        | XP.Mod -> A.Mod
        | _ -> assert false
      in
      A.Binop (sql_op, tr_scalar env a, tr_scalar env b)
  | Var _ | Context_item | Path _ -> (
      match resolve env e with
      | Sql sql -> sql
      | Loc l -> (
          if l.pending <> [] then fail "cannot take the scalar value of an unbounded path";
          match P.scalar_column l.spec with
          | Some c -> A.Col (Some l.scope_alias, c)
          | None -> fail "element has no scalar column"))
  | If (c, t, f) -> A.Case ([ (tr_cond env c, tr_scalar env t) ], Some (tr_scalar env f))
  | e -> fail "unsupported scalar expression (%s)" (summary e)

(* aggregate functions over an unbounded path *)
and tr_agg env (e : expr) : A.expr =
  match e with
  | Fn_call (fname, [ arg ]) -> (
      let l = loc_of env arg in
      match l.pending with
      | _ :: _ as layers ->
          let innermost = List.nth layers (List.length layers - 1) in
          let agg =
            match fname with
            | "count" -> A.Count_star
            | "sum" | "avg" | "min" | "max" -> (
                match P.scalar_column l.spec with
                | Some c ->
                    let col = A.Col (Some innermost.alias, c) in
                    (match fname with
                    | "sum" -> A.Sum col
                    | "avg" -> A.Avg col
                    | "min" -> A.Min col
                    | _ -> A.Max col)
                | None -> fail "fn:%s over a non-scalar path" fname)
            | f -> fail "unsupported aggregate fn:%s" f
          in
          A.Scalar_subquery
            (A.Aggregate { group_by = []; aggs = [ (agg, "agg") ]; input = layers_plan layers })
      | [] -> (
          (* aggregate over a singleton: count=1/0 by nullness, sum=value *)
          match P.scalar_column l.spec with
          | Some c -> (
              let col = A.Col (Some l.scope_alias, c) in
              match fname with
              | "count" -> A.Case ([ (A.Is_null col, A.Const (V.Int 0)) ], Some (A.Const (V.Int 1)))
              | _ -> col)
          | None -> fail "aggregate over an element with no scalar column"))
  | _ -> fail "malformed aggregate call"

(* boolean translation *)
and tr_cond env (e : expr) : A.expr =
  match e with
  | Binop (XP.And, a, b) -> A.Binop (A.And, tr_cond env a, tr_cond env b)
  | Binop (XP.Or, a, b) -> A.Binop (A.Or, tr_cond env a, tr_cond env b)
  | Binop ((XP.Eq | XP.Neq | XP.Lt | XP.Leq | XP.Gt | XP.Geq) as op, a, b) ->
      let sql_op =
        match op with
        | XP.Eq -> A.Eq
        | XP.Neq -> A.Neq
        | XP.Lt -> A.Lt
        | XP.Leq -> A.Leq
        | XP.Gt -> A.Gt
        | XP.Geq -> A.Geq
        | _ -> assert false
      in
      A.Binop (sql_op, tr_scalar env a, tr_scalar env b)
  | Fn_call ("not", [ inner ]) -> A.Not (tr_cond env inner)
  | Fn_call (("exists" | "boolean"), [ arg ]) | arg -> (
      match resolve env arg with
      | Sql sql -> sql
      | Loc l -> (
          match l.pending with
          | [ layer ] -> A.Exists (layer_plan layer)
          | [] -> (
              match P.scalar_column l.spec with
              | Some c -> A.Not (A.Is_null (A.Col (Some l.scope_alias, c)))
              | None -> A.Const (V.Int 1) (* structurally always present *))
          | _ -> fail "existence test across nested collections"))

(* content translation: any expression producing XML content *)
and tr env (e : expr) : A.expr =
  match e with
  | Seq es -> A.Xml_concat (List.map (tr env) es)
  | Literal (Str s) -> A.Const (V.Str s)
  | Literal (Num f) ->
      A.Const (V.Str (Xdb_xpath.Value.string_of_number f))
  | Literal (Bool b) -> A.Const (V.Str (if b then "true" else "false"))
  | Comp_text inner -> A.Xml_text (tr_scalar env inner)
  | Comp_comment inner -> A.Xml_comment (tr_scalar env inner)
  | Direct_elem (name, attrs, content) ->
      let attr_expr (an, pieces) =
        let piece = function
          | Attr_str s -> A.Const (V.Str s)
          | Attr_expr e -> tr_scalar env e
        in
        match pieces with
        | [ p ] -> (an, piece p)
        | ps -> (an, A.Fn ("concat", List.map piece ps))
      in
      (* xsl:attribute constructors appearing as leading content become
         attributes of the element *)
      let rec split_attrs acc = function
        | Comp_attr (an, e) :: rest -> split_attrs ((an, tr_scalar env e) :: acc) rest
        | Seq es :: rest -> split_attrs acc (es @ rest)
        | content -> (List.rev acc, content)
      in
      let comp_attrs, content = split_attrs [] content in
      A.Xml_element
        (name, List.map attr_expr attrs @ comp_attrs, List.map (tr env) content)
  | Comp_elem (Literal (Str name), content) -> A.Xml_element (name, [], [ tr env content ])
  | Comp_elem _ -> fail "computed element names are not rewritable"
  | Comp_attr _ -> fail "attribute constructors outside elements are not rewritable"
  | If (c, t, f) ->
      A.Case ([ (tr_cond env c, tr env t) ], Some (tr env f))
  | Fn_call (("string" | "concat" | "data" | "number"), _)
  | Binop ((XP.Plus | XP.Minus | XP.Mul | XP.Div | XP.Mod), _, _) ->
      tr_scalar env e
  | Fn_call (("count" | "sum" | "avg" | "min" | "max"), _) -> tr_agg env e
  | Fn_call ("string-join", [ arg; Literal (Str sep) ]) -> (
      (* built-in-template-only compaction: string-join over text values *)
      match resolve env arg with
      | Loc l -> (
          match l.pending with
          | [ layer ] -> (
              match P.scalar_column l.spec with
              | Some c ->
                  A.Scalar_subquery
                    (A.Aggregate
                       {
                         group_by = [];
                         aggs = [ (A.String_agg (A.Col (Some layer.alias, c), sep), "agg") ];
                         input = layer_plan layer;
                       })
              | None -> fail "string-join over a non-scalar path")
          | _ -> fail "string-join over this path shape is not supported")
      | Sql _ -> fail "string-join over a computed sequence")
  | Flwor (clauses, ret) -> tr_flwor env clauses ret
  | Var _ | Context_item | Path _ -> (
      match resolve env e with
      | Sql sql -> sql
      | Loc l -> (
          match l.pending with
          | [] ->
              (* copy of the published element: re-publish it *)
              publish_spec env l.spec l.scope_alias
          | layers ->
              (* copy-of an unbounded path: aggregate the republication in
                 document order (the publishing specs' order keys) *)
              let innermost = List.nth layers (List.length layers - 1) in
              let order =
                List.concat_map
                  (fun (ly : layer) ->
                    List.map (fun (c, d) -> (A.Col (Some ly.alias, c), d)) ly.order_by)
                  layers
              in
              A.Scalar_subquery
                (A.Aggregate
                   {
                     group_by = [];
                     aggs =
                       [ (A.Xml_agg (publish_spec env l.spec innermost.alias, order), "result") ];
                     input = layers_plan layers;
                   })))
  | e -> fail "unsupported content expression (%s)" (summary e)

and tr_flwor env clauses ret : A.expr =
  match clauses with
  | [] -> tr env ret
  | Let { var; value } :: rest ->
      let env = { env with vars = Smap.add var (resolve env value) env.vars } in
      tr_flwor env rest ret
  | Where w :: rest ->
      A.Case ([ (tr_cond env w, tr_flwor env rest ret) ], None)
  | Order_by _ :: _ -> fail "order by outside a for clause is not supported"
  | For { var; pos_var; source } :: rest -> (
      if pos_var <> None then fail "positional variables are not rewritable";
      let l = loc_of env source in
      match l.pending with
      | _ :: _ as layers ->
          let layer = List.nth layers (List.length layers - 1) in
          let env' =
            { env with
              vars = Smap.add var (Loc { spec = l.spec; pending = []; scope_alias = layer.alias }) env.vars }
          in
          (* hoist immediately-following where/order-by into the subquery *)
          let rec hoist rest (wheres, order) =
            match rest with
            | Where w :: more -> (
                match try Some (xquery_where_to_sql env' var l.spec layer w) with Not_rewritable _ -> None with
                | Some sql -> hoist more (wheres @ [ sql ], order)
                | None -> (wheres, order, rest))
            | Order_by keys :: more -> (
                match try Some (order_keys env' l.spec layer keys) with Not_rewritable _ -> None with
                | Some ks -> hoist more (wheres, order @ ks)
                | None -> (wheres, order, rest))
            | _ -> (wheres, order, rest)
          and xquery_where_to_sql env _var _spec _layer w = tr_cond env w
          and order_keys env spec layer keys =
            let rec key_col k =
              match k with
              | Fn_call (("string" | "number"), [ inner ]) -> key_col inner
              | Path (Var _, steps) | Path (Context_item, steps) ->
                  scalar_of_path spec layer.alias steps
              | Var _ | Context_item -> (
                  match P.scalar_column spec with
                  | Some c -> A.Col (Some layer.alias, c)
                  | None -> fail "sort key has no scalar column")
              | _ -> fail "unsupported sort key"
            in
            ignore env;
            List.map (fun (k, desc) -> (key_col k, if desc then A.Desc else A.Asc)) keys
          in
          let wheres, order, rest = hoist rest ([], []) in
          layer.where <- layer.where @ wheres;
          let spec_order =
            order
            @ List.concat_map
                (fun (ly : layer) ->
                  List.map (fun (c, d) -> (A.Col (Some ly.alias, c), d)) ly.order_by)
                layers
          in
          let body = tr_flwor env' rest ret in
          A.Scalar_subquery
            (A.Aggregate
               {
                 group_by = [];
                 aggs = [ (A.Xml_agg (body, spec_order), "result") ];
                 input = layers_plan layers;
               })
      | [] ->
          (* iteration over a singleton element: just bind it *)
          let env = { env with vars = Smap.add var (Loc l) env.vars } in
          tr_flwor env rest ret
      )

(* re-publish a located subtree (deep copy of published content) *)
and publish_spec env (spec : P.spec) alias : A.expr =
  match spec with
  | P.Text_const s -> A.Const (V.Str s)
  | P.Text_col c -> A.Xml_text (A.Col (Some alias, c))
  | P.Text_expr e -> A.Xml_text e
  | P.Elem { name; attrs; content } ->
      A.Xml_element (name, attrs, List.map (fun c -> publish_spec env c alias) content)
  | P.Agg a ->
      let layer =
        {
          table = a.table;
          alias = a.alias;
          parent_alias = alias;
          correlate = a.correlate;
          where = (match a.where with Some w -> [ w ] | None -> []);
          order_by = a.order_by;
        }
      in
      let order = List.map (fun (c, d) -> (A.Col (Some a.alias, c), d)) a.order_by in
      A.Scalar_subquery
        (A.Aggregate
           {
             group_by = [];
             aggs = [ (A.Xml_agg (publish_spec env a.body a.alias, order), "result") ];
             input = layer_plan layer;
           })

and summary = function
  | Flwor _ -> "FLWOR"
  | Direct_elem (n, _, _) -> "<" ^ n ^ ">"
  | Fn_call (f, _) -> "fn:" ^ f
  | User_call (f, _) -> "local:" ^ f
  | Instance_of _ -> "instance of"
  | Path _ -> "path"
  | Var v -> "$" ^ v
  | _ -> "expr"

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** [rewrite_prog view prog] — the per-row SQL/XML expression equivalent to
    running [prog] with one view document as context item. *)
let rewrite_prog (view : P.view) (p : prog) : A.expr =
  if p.funs <> [] then fail "queries with user functions (non-inline mode) are not rewritable";
  let env = { view; vars = Smap.empty } in
  let env =
    List.fold_left
      (fun env (v, e) -> { env with vars = Smap.add v (resolve env e) env.vars })
      env p.var_decls
  in
  tr env p.body

(** [rewrite_view_plan ?timer db view prog] — a full relational plan
    producing one [result] XML column per base-table row, optimised
    (index selection on the pushed-down predicates).  [timer] wraps each
    optimiser pass for per-pass planning-time metrics. *)
let rewrite_view_plan ?timer db (view : P.view) (p : prog) : A.plan =
  let result = rewrite_prog view p in
  let plan =
    A.Project
      ([ (result, "result") ], A.Seq_scan { table = view.P.base_table; alias = view.P.base_alias })
  in
  Xdb_rel.Optimizer.optimize_deep ?timer db plan
