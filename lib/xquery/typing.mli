(** Static structural typing of XQuery results (paper §3.2, bullets 3–4):
    derive the element declarations of everything a query can construct or
    forward from its input. *)

exception Typing_error of string

val result_schema : ?input:Xdb_schema.Types.t -> Ast.prog -> Xdb_schema.Types.t
(** Structural information of the program's result, rooted at the
    synthetic ["#result"] element — the input for a downstream partial
    evaluation stage (Example 2 chaining). *)
