(** Parser for the XQuery subset (the target language of the XSLT rewrite;
    see {!Ast}).  Path steps build on the shared XPath AST; predicates
    inside steps are lowered with {!to_xpath}. *)

exception Parse_error of string

val to_xpath : Ast.expr -> Xdb_xpath.Ast.expr
(** Lower an XQuery expression to XPath 1.0 where possible (used for step
    predicates). @raise Parse_error for constructs XPath cannot express
    (FLWOR, constructors, …). *)

val parse_prog : string -> Ast.prog
(** Parse a complete query: [declare variable]/[declare function] prolog
    followed by the body expression. *)

val parse : string -> Ast.expr
(** Parse a single expression (no prolog allowed). *)
