(** XQuery value model: sequences of items (nodes or atomics), with
    conversions to and from the XPath 1.0 value model so path predicates can
    be delegated to the XPath engine. *)

module X = Xdb_xml.Types
module XV = Xdb_xpath.Value

type item = Node of X.node | Atom of Ast.atom

type t = item list

exception Xquery_type_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Xquery_type_error m)) fmt

let of_nodes ns = List.map (fun n -> Node n) ns

let singleton_string s = [ Atom (Ast.Str s) ]
let singleton_num f = [ Atom (Ast.Num f) ]
let singleton_bool b = [ Atom (Ast.Bool b) ]
let empty : t = []

let atom_string = function
  | Ast.Str s -> s
  | Ast.Num f -> XV.string_of_number f
  | Ast.Bool b -> if b then "true" else "false"

let item_string = function Node n -> X.string_value n | Atom a -> atom_string a

(** [string_value v] — string of the first item ("" when empty); matches
    fn:string on a single item and XPath 1.0 semantics on node-sets. *)
let string_value = function [] -> "" | item :: _ -> item_string item

let number_value = function
  | [] -> Float.nan
  | [ Atom (Ast.Num f) ] -> f
  | [ Atom (Ast.Bool b) ] -> if b then 1.0 else 0.0
  | item :: _ -> XV.number_of_string (item_string item)

(** Effective boolean value (XQuery: empty=false, first-node=true,
    singleton atoms by type). *)
let boolean_value = function
  | [] -> false
  | Node _ :: _ -> true
  | [ Atom (Ast.Bool b) ] -> b
  | [ Atom (Ast.Num f) ] -> f <> 0.0 && not (Float.is_nan f)
  | [ Atom (Ast.Str s) ] -> s <> ""
  | _ -> err "effective boolean value of a multi-item atomic sequence"

let nodes_of = function
  | v ->
      List.map
        (function Node n -> n | Atom a -> err "expected nodes, found atomic %S" (atom_string a))
        v

(** Convert to the XPath 1.0 value model (for predicate delegation). *)
let to_xpath_value (v : t) : XV.t =
  if List.for_all (function Node _ -> true | Atom _ -> false) v then
    XV.Nodes (List.map (function Node n -> n | Atom _ -> assert false) v)
  else
    match v with
    | [ Atom (Ast.Str s) ] -> XV.Str s
    | [ Atom (Ast.Num f) ] -> XV.Num f
    | [ Atom (Ast.Bool b) ] -> XV.Bool b
    | _ -> err "cannot pass a mixed/multi-item atomic sequence to XPath"

let of_xpath_value : XV.t -> t = function
  | XV.Nodes ns -> of_nodes ns
  | XV.Str s -> singleton_string s
  | XV.Num f -> singleton_num f
  | XV.Bool b -> singleton_bool b

(** Item-type test ([instance of]). *)
let item_matches (it : Ast.item_type) = function
  | Atom _ -> false
  | Node n -> (
      match (it, n.X.kind) with
      | Ast.It_node, _ -> true
      | Ast.It_text, X.Text _ -> true
      | Ast.It_comment, X.Comment _ -> true
      | Ast.It_element None, X.Element _ -> true
      | Ast.It_element (Some name), X.Element q -> String.equal q.local name
      | Ast.It_attribute None, X.Attribute _ -> true
      | Ast.It_attribute (Some name), X.Attribute (q, _) -> String.equal q.local name
      | _ -> false)

(** Sequence equality for tests: nodes by deep structural equality, atoms by
    string/number identity. *)
let equal (a : t) (b : t) =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         match (x, y) with
         | Node nx, Node ny -> X.deep_equal nx ny
         | Atom ax, Atom ay -> ax = ay
         | _ -> false)
       a b
