(** Dynamic evaluation of the XQuery subset over XML trees.

    Node construction follows XQuery content semantics: constructed content
    copies input nodes; adjacent atomic values are joined with single spaces
    and become text nodes.  Path steps are delegated to the XPath engine
    with the XQuery variable environment injected, so predicates see the
    same variables. *)

module X = Xdb_xml.Types
module E = Xdb_xml.Events
module XP = Xdb_xpath.Ast
module XE = Xdb_xpath.Eval
open Ast

exception Eval_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Eval_error m)) fmt

module Smap = Map.Make (String)

type env = {
  vars : Value.t Smap.t;
  funs : fundef Smap.t;
  context : X.node option;  (** the context item (".") if any *)
  depth : int;  (** recursion guard *)
}

let max_depth = 4000

let empty_env = { vars = Smap.empty; funs = Smap.empty; context = None; depth = 0 }

let env_with_context node = { empty_env with context = Some node }

let bind env v value = { env with vars = Smap.add v value env.vars }

let context_node env =
  match env.context with Some n -> n | None -> err "no context item in scope"

(* XPath context carrying the XQuery variables *)
let xpath_ctx env node =
  let vars =
    Smap.fold (fun k v acc -> XE.Smap.add k (Value.to_xpath_value v) acc) env.vars XE.Smap.empty
  in
  { (XE.make_context node) with XE.vars }

(* ------------------------------------------------------------------ *)
(* Construction helpers                                                *)
(* ------------------------------------------------------------------ *)

(* sequence → content events into a tree builder (XQuery content semantics):
   nodes are deep-copied and adopted; adjacent atoms join with " " into one
   text event.  Node copies go through [builder_add_node] rather than an
   event replay so document-node items keep their exact shape. *)
let build_content (b : E.builder) (v : Value.t) : unit =
  let flush pending =
    if pending <> [] then E.builder_emit b (E.Text (String.concat " " (List.rev pending)))
  in
  let rec go pending = function
    | [] -> flush pending
    | Value.Atom a :: rest -> go (Value.atom_string a :: pending) rest
    | Value.Node n :: rest ->
        flush pending;
        E.builder_add_node b (X.deep_copy n);
        go [] rest
  in
  go [] v

(* sequence → content node list: copy nodes; adjacent atoms join with " " *)
let content_nodes (v : Value.t) : X.node list =
  let b = E.tree_builder () in
  build_content b v;
  E.builder_result b

(* run builder events for one constructed element, translating the event
   core's attribute-placement error into XQuery's wording *)
let build_element (f : E.builder -> unit) : X.node =
  let b = E.tree_builder () in
  (try f b
   with E.Serialize_error _ -> err "attribute node constructed after non-attribute content");
  match E.builder_result b with
  | [ n ] -> n
  | _ -> err "element constructor produced no single node"

(* single-event constructors (attribute / text / comment) share the same
   construction path *)
let constructed_node ev =
  let b = E.tree_builder () in
  E.builder_emit b ev;
  match E.builder_result b with [ n ] -> n | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval (env : env) (e : expr) : Value.t =
  if env.depth > max_depth then err "recursion depth exceeded (%d)" max_depth;
  match e with
  | Seq es -> List.concat_map (eval env) es
  | Literal a -> [ Value.Atom a ]
  | Var v -> (
      match Smap.find_opt v env.vars with
      | Some value -> value
      | None -> err "unbound variable $%s" v)
  | Context_item -> [ Value.Node (context_node env) ]
  | Root -> [ Value.Node (X.root_of (context_node env)) ]
  | If (c, t, f) -> if Value.boolean_value (eval env c) then eval env t else eval env f
  | Neg e -> Value.singleton_num (-.Value.number_value (eval env e))
  | Binop (op, a, b) -> eval_binop env op a b
  | Instance_of (e, it) -> (
      match eval env e with
      | [ item ] -> Value.singleton_bool (Value.item_matches it item)
      | [] -> Value.singleton_bool false
      | _ -> Value.singleton_bool false)
  | Path (base, steps) ->
      let base_v = eval env base in
      let nodes = Value.nodes_of base_v in
      let result =
        List.concat_map
          (fun n ->
            let ctx = xpath_ctx env n in
            XE.eval_steps ctx [ n ] steps)
          nodes
      in
      Value.of_nodes (Xdb_xpath.Value.sort_nodes result)
  | Fn_call (name, args) -> eval_fn env name args
  | User_call (name, args) -> (
      match Smap.find_opt name env.funs with
      | None -> err "call to undefined function %s()" name
      | Some f ->
          if List.length f.params <> List.length args then
            err "function %s expects %d arguments, got %d" name (List.length f.params)
              (List.length args);
          let env' =
            List.fold_left2
              (fun acc p a -> bind acc p (eval env a))
              { env with depth = env.depth + 1 }
              f.params args
          in
          eval env' f.body)
  | Flwor (clauses, return_) -> eval_flwor env clauses return_
  | Direct_elem (name, attrs, content) ->
      let el =
        build_element (fun b ->
            E.builder_emit b (E.Start_element (X.qname name));
            List.iter
              (fun (an, pieces) ->
                let v =
                  String.concat ""
                    (List.map
                       (function
                         | Attr_str s -> s
                         | Attr_expr e ->
                             String.concat " " (List.map Value.item_string (eval env e)))
                       pieces)
                in
                E.builder_emit b (E.Attr (X.qname an, v)))
              attrs;
            List.iter (fun ce -> build_content b (eval env ce)) content;
            E.builder_emit b E.End_element)
      in
      [ Value.Node el ]
  | Comp_elem (name_e, content_e) ->
      let name = Value.string_value (eval env name_e) in
      let el =
        build_element (fun b ->
            E.builder_emit b (E.Start_element (X.qname name));
            build_content b (eval env content_e);
            E.builder_emit b E.End_element)
      in
      [ Value.Node el ]
  | Comp_attr (name, e) ->
      let v = String.concat " " (List.map Value.item_string (eval env e)) in
      [ Value.Node (constructed_node (E.Attr (X.qname name, v))) ]
  | Comp_text e ->
      [
        Value.Node
          (constructed_node (E.Text (String.concat " " (List.map Value.item_string (eval env e)))));
      ]
  | Comp_comment e ->
      [ Value.Node (constructed_node (E.Comment (Value.string_value (eval env e)))) ]
  | Quantified { every; var; source; satisfies } ->
      let items = eval env source in
      let holds item = Value.boolean_value (eval (bind env var [ item ]) satisfies) in
      Value.singleton_bool (if every then List.for_all holds items else List.exists holds items)

and eval_binop env op a b =
  match op with
  | XP.Or -> Value.singleton_bool (Value.boolean_value (eval env a) || Value.boolean_value (eval env b))
  | XP.And ->
      Value.singleton_bool (Value.boolean_value (eval env a) && Value.boolean_value (eval env b))
  | XP.Union ->
      let na = Value.nodes_of (eval env a) and nb = Value.nodes_of (eval env b) in
      Value.of_nodes (Xdb_xpath.Value.sort_nodes (na @ nb))
  | XP.Plus | XP.Minus | XP.Mul | XP.Div | XP.Mod ->
      let x = Value.number_value (eval env a) and y = Value.number_value (eval env b) in
      Value.singleton_num
        (match op with
        | XP.Plus -> x +. y
        | XP.Minus -> x -. y
        | XP.Mul -> x *. y
        | XP.Div -> x /. y
        | XP.Mod -> Float.rem x y
        | _ -> assert false)
  | XP.Eq | XP.Neq | XP.Lt | XP.Leq | XP.Gt | XP.Geq ->
      let cmp_op =
        match op with
        | XP.Eq -> `Eq
        | XP.Neq -> `Neq
        | XP.Lt -> `Lt
        | XP.Leq -> `Leq
        | XP.Gt -> `Gt
        | XP.Geq -> `Geq
        | _ -> assert false
      in
      let va = Value.to_xpath_value (eval env a) and vb = Value.to_xpath_value (eval env b) in
      Value.singleton_bool (Xdb_xpath.Value.compare_values cmp_op va vb)

and eval_flwor env clauses return_ =
  (* tuple stream evaluation: each clause transforms a list of environments *)
  let streams =
    List.fold_left
      (fun envs clause ->
        match clause with
        | Let { var; value } -> List.map (fun e -> bind e var (eval e value)) envs
        | For { var; pos_var; source } ->
            List.concat_map
              (fun e ->
                let items = eval e source in
                List.mapi
                  (fun i item ->
                    let e = bind e var [ item ] in
                    match pos_var with
                    | None -> e
                    | Some pv -> bind e pv (Value.singleton_num (float_of_int (i + 1))))
                  items)
              envs
        | Where cond -> List.filter (fun e -> Value.boolean_value (eval e cond)) envs
        | Order_by keys ->
            let decorated =
              List.map
                (fun e -> (List.map (fun (k, desc) -> (Value.string_value (eval e k), desc)) keys, e))
                envs
            in
            let cmp (ka, _) (kb, _) =
              let rec go = function
                | [] -> 0
                | ((xa, desc), (xb, _)) :: rest -> (
                    (* numeric comparison when both parse as numbers *)
                    let c =
                      match (float_of_string_opt xa, float_of_string_opt xb) with
                      | Some fa, Some fb -> compare fa fb
                      | _ -> compare xa xb
                    in
                    let c = if desc then -c else c in
                    match c with 0 -> go rest | c -> c)
              in
              go (List.combine ka kb)
            in
            List.map snd (List.stable_sort cmp decorated))
      [ env ] clauses
  in
  List.concat_map (fun e -> eval e return_) streams

and eval_fn env name args =
  let v i = eval env (List.nth args i) in
  let nargs = List.length args in
  let arity n = if nargs <> n then err "fn:%s expects %d argument(s), got %d" name n nargs in
  match name with
  | "string" ->
      arity 1;
      Value.singleton_string (Value.string_value (v 0))
  | "concat" ->
      if nargs < 2 then err "fn:concat expects at least 2 arguments";
      Value.singleton_string
        (String.concat "" (List.map (fun a -> Value.string_value (eval env a)) args))
  | "string-join" ->
      arity 2;
      let sep = Value.string_value (v 1) in
      Value.singleton_string (String.concat sep (List.map Value.item_string (v 0)))
  | "count" ->
      arity 1;
      Value.singleton_num (float_of_int (List.length (v 0)))
  | "sum" ->
      arity 1;
      Value.singleton_num
        (List.fold_left (fun acc i -> acc +. Xdb_xpath.Value.number_of_string (Value.item_string i)) 0.0 (v 0))
  | "avg" ->
      arity 1;
      let items = v 0 in
      if items = [] then Value.empty
      else
        Value.singleton_num
          (List.fold_left
             (fun acc i -> acc +. Xdb_xpath.Value.number_of_string (Value.item_string i))
             0.0 items
          /. float_of_int (List.length items))
  | "min" | "max" ->
      arity 1;
      let items = v 0 in
      if items = [] then Value.empty
      else
        let nums = List.map (fun i -> Xdb_xpath.Value.number_of_string (Value.item_string i)) items in
        Value.singleton_num
          (List.fold_left (if name = "min" then Float.min else Float.max) (List.hd nums) (List.tl nums))
  | "empty" ->
      arity 1;
      Value.singleton_bool (v 0 = [])
  | "exists" ->
      arity 1;
      Value.singleton_bool (v 0 <> [])
  | "not" ->
      arity 1;
      Value.singleton_bool (not (Value.boolean_value (v 0)))
  | "true" -> Value.singleton_bool true
  | "false" -> Value.singleton_bool false
  | "boolean" ->
      arity 1;
      Value.singleton_bool (Value.boolean_value (v 0))
  | "number" ->
      arity 1;
      Value.singleton_num (Value.number_value (v 0))
  | "data" ->
      arity 1;
      List.map (fun i -> Value.Atom (Str (Value.item_string i))) (v 0)
  | "name" | "local-name" -> (
      arity 1;
      match v 0 with
      | [ Value.Node n ] -> Value.singleton_string (X.local_name n)
      | [] -> Value.singleton_string ""
      | _ -> err "fn:%s expects a single node" name)
  | "position" | "last" -> err "fn:%s is only available inside path predicates" name
  | "substring" ->
      if nargs <> 2 && nargs <> 3 then err "fn:substring expects 2 or 3 arguments";
      let s = Value.string_value (v 0) in
      let start = Value.number_value (v 1) in
      let len = if nargs = 3 then Some (Value.number_value (v 2)) else None in
      Value.singleton_string (XE.substring_xpath s start len)
  | "string-length" ->
      arity 1;
      Value.singleton_num (float_of_int (String.length (Value.string_value (v 0))))
  | "normalize-space" ->
      arity 1;
      Value.singleton_string (XE.normalize_space (Value.string_value (v 0)))
  | "translate" ->
      arity 3;
      Value.singleton_string
        (XE.translate_xpath (Value.string_value (v 0)) (Value.string_value (v 1))
           (Value.string_value (v 2)))
  | "contains" ->
      arity 2;
      let s = Value.string_value (v 0) and sub = Value.string_value (v 1) in
      let found =
        if sub = "" then true
        else
          let ls = String.length s and lb = String.length sub in
          let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
          go 0
      in
      Value.singleton_bool found
  | "substring-before" | "substring-after" ->
      arity 2;
      let s = Value.string_value (v 0) and sub = Value.string_value (v 1) in
      let ls = String.length s and lb = String.length sub in
      let rec find i =
        if i + lb > ls then None else if String.sub s i lb = sub then Some i else find (i + 1)
      in
      let pos = if lb = 0 then Some 0 else find 0 in
      Value.singleton_string
        (match (pos, name) with
        | Some i, "substring-before" -> String.sub s 0 i
        | Some i, _ -> String.sub s (i + lb) (ls - i - lb)
        | None, _ -> "")
  | "starts-with" ->
      arity 2;
      let s = Value.string_value (v 0) and p = Value.string_value (v 1) in
      Value.singleton_bool
        (String.length s >= String.length p && String.sub s 0 (String.length p) = p)
  | "format-number" ->
      arity 2;
      Value.singleton_string
        (XE.format_number (Value.number_value (v 0)) (Value.string_value (v 1)))
  | "floor" ->
      arity 1;
      Value.singleton_num (Float.floor (Value.number_value (v 0)))
  | "ceiling" ->
      arity 1;
      Value.singleton_num (Float.ceil (Value.number_value (v 0)))
  | "round" ->
      arity 1;
      Value.singleton_num (Xdb_xpath.Value.round_number (Value.number_value (v 0)))
  | _ -> err "unknown function fn:%s" name

(* ------------------------------------------------------------------ *)
(* Program evaluation                                                  *)
(* ------------------------------------------------------------------ *)

(** [run prog ~context] evaluates a program against a context node. *)
let run (p : prog) ~context : Value.t =
  let env = env_with_context context in
  let env =
    List.fold_left (fun acc (f : fundef) -> { acc with funs = Smap.add f.fname f acc.funs })
      env p.funs
  in
  let env = List.fold_left (fun acc (v, e) -> bind acc v (eval acc e)) env p.var_decls in
  eval env p.body

(** [run_to_nodes prog ~context] — result as a constructed node forest
    (atoms become text nodes), the shape XMLQuery RETURNING CONTENT gives. *)
let run_to_nodes p ~context = content_nodes (run p ~context)

(** [emit_result sink v] — a top-level result sequence as output events:
    atoms join with spaces into text events, nodes replay in place (no
    copy — the streamed image of {!content_nodes}). *)
let emit_result (sink : E.sink) (v : Value.t) : unit =
  let flush pending =
    if pending <> [] then sink.E.emit (E.Text (String.concat " " (List.rev pending)))
  in
  let rec go pending = function
    | [] -> flush pending
    | Value.Atom a :: rest -> go (Value.atom_string a :: pending) rest
    | Value.Node n :: rest ->
        flush pending;
        E.emit_tree sink n;
        go [] rest
  in
  go [] v

(** [run_serialized prog ~context] — evaluate and serialize in one pass:
    result nodes stream into the buffer without the copy
    {!run_to_nodes} makes.  Byte-identical to serializing
    [run_to_nodes]. *)
let run_serialized ?(meth = E.Xml) ?(indent = false) (p : prog) ~context : string =
  E.to_string ~meth ~indent (fun sink -> emit_result sink (run p ~context))
