(** Execution of the SQL/XML surface: routes [XMLTransform] through the
    XSLT rewrite, [XMLQuery … PASSING] through the XQuery rewrite, and
    queries over XSLT views through the combined optimisation (Example 2),
    with functional fallbacks where the rewrites do not apply. *)

exception Sql_error of string

(** An XSLT view created by [CREATE VIEW … AS SELECT XMLTransform(…)]. *)
type xslt_view = {
  xv_name : string;
  xv_column : string;
  xv_compiled : Xdb_core.Pipeline.compiled;
}

type session = {
  db : Xdb_rel.Database.t;
  mutable xml_views : Xdb_rel.Publish.view list;
  mutable xslt_views : xslt_view list;
}

type result = {
  columns : string list;
  rows : Xdb_rel.Value.t list list;
  note : string option;  (** execution-strategy remark (rewrite/fallback) *)
}

val make_session : ?views:Xdb_rel.Publish.view list -> Xdb_rel.Database.t -> session

val register_view : session -> Xdb_rel.Publish.view -> unit
(** Register an XMLType publishing view (the SQL surface cannot create
    publishing views; they come from the API, like Oracle's DBMS views). *)

val execute : session -> string -> result
(** Parse and run one statement. @raise Sql_error / {!Parser.Parse_error}. *)

val render : result -> string
(** Fixed-width rendering for CLI/example output, note included. *)
