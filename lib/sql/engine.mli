(** Execution of the plain-relational SQL surface: base-table SELECTs on
    the Volcano executor, ANALYZE, and INSERT/UPDATE/DELETE with B-tree
    index maintenance, two-phase validation and per-table [data_version]
    bumps.  Statements over XMLType/XSLT views route through
    [Xdb_core.Sql_front], which builds on the translation helpers
    exported here — the dependency points from the core facade down into
    this library. *)

exception Sql_error of string

type result = {
  columns : string list;
  rows : Xdb_rel.Value.t list list;
  note : string option;  (** execution-strategy remark (rewrite/fallback) *)
}

(** {1 Translation helpers} (shared with [Xdb_core.Sql_front]) *)

val plain_expr : Ast.expr -> Xdb_rel.Algebra.expr
(** Scalar translation to the relational algebra.
    @raise Sql_error on [*] or XML functions. *)

val item_name : int -> Ast.expr * string option -> string
(** Output-column name of the [i]-th select item ([AS] alias, column
    name, or [col<i+1>]). *)

val is_view_column : Xdb_rel.Publish.view -> string -> Ast.expr -> bool
(** [is_view_column view from_alias e] — is [e] a reference to the
    view's XMLType column (optionally qualified by the FROM alias or
    the view name)? *)

(** {1 Statement execution} *)

val run_table_select : Xdb_rel.Database.t -> Xdb_rel.Table.t -> Ast.select -> result
(** Single-table SELECT through [Optimizer.optimize_deep] and the batch
    executor; the note carries the optimised plan's SQL rendering. *)

val run_analyze : Xdb_rel.Database.t -> string option -> result
(** [ANALYZE [table]] — one table or the whole catalog. *)

val run_dml : Xdb_rel.Database.t -> Ast.statement -> result
(** Execute one INSERT/UPDATE/DELETE against its target table, with
    index maintenance and a [data_version] bump when at least one row
    changed.  Validation is two-phase: column positions, arities and
    value types are all checked {e before} the first row mutates, so a
    failed statement leaves the table and its data version untouched.
    The result is one [rows_affected] row; the note reports the table's
    new data version (and whether its statistics went stale).
    @raise Sql_error / [Table_error] on validation failures;
    [Invalid_argument] if the statement is not DML. *)

val dml_target : Ast.statement -> string option
(** Target table of a DML statement, [None] for non-DML — the hook the
    engine uses to invalidate shred-store caches after writes. *)

val render : result -> string
(** Fixed-width rendering for CLI/example output, note included. *)
