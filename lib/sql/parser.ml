(** Parser for the SQL/XML fragment.

    Keywords are case-insensitive; strings use single quotes with ['']
    escaping (so complete XSLT stylesheets paste in verbatim, as in paper
    Table 5).  Statements may end with an optional [;]. *)

open Ast

exception Parse_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type token =
  | Ident of string  (** original case preserved; keywords match case-insensitively *)
  | Str of string
  | Num of int
  | Punct of string

let is_ident_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false
let is_ident_char c = is_ident_start c || (match c with '0' .. '9' | '$' | '#' -> true | _ -> false)
let is_digit = function '0' .. '9' -> true | _ -> false

let tokenize (s : string) : token list =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '-' then (
      (* line comment *)
      while !i < n && s.[!i] <> '\n' do
        incr i
      done)
    else if is_ident_start c then (
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      let word = String.sub s start (!i - start) in
      out := Ident word :: !out)
    else if is_digit c then (
      let start = !i in
      while !i < n && is_digit s.[!i] do
        incr i
      done;
      out := Num (int_of_string (String.sub s start (!i - start))) :: !out)
    else if c = '\'' then (
      incr i;
      let buf = Buffer.create 64 in
      let rec go () =
        if !i >= n then err "unterminated string literal"
        else if s.[!i] = '\'' then
          if !i + 1 < n && s.[!i + 1] = '\'' then (
            Buffer.add_char buf '\'';
            i := !i + 2;
            go ())
          else incr i
        else (
          Buffer.add_char buf s.[!i];
          incr i;
          go ())
      in
      go ();
      out := Str (Buffer.contents buf) :: !out)
    else (
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "<>" | "<=" | ">=" | "!=" | "||" ->
          out := Punct two :: !out;
          i := !i + 2
      | _ ->
          (match c with
          | '(' | ')' | ',' | '.' | ';' | '*' | '=' | '<' | '>' | '+' | '-' | '/' ->
              out := Punct (String.make 1 c) :: !out
          | c -> err "unexpected character %C" c);
          incr i)
  done;
  List.rev !out

type stream = { mutable toks : token list }

let upper = String.uppercase_ascii

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let at_kw st kw =
  match peek st with Some (Ident w) -> upper w = kw | _ -> false

let eat_kw st kw =
  if at_kw st kw then advance st else err "expected keyword %s" kw

let at_punct st p = match peek st with Some (Punct q) -> q = p | _ -> false

let eat_punct st p = if at_punct st p then advance st else err "expected %S" p

let ident st =
  match peek st with
  | Some (Ident w) ->
      advance st;
      w
  | _ -> err "expected an identifier"

let string_lit st =
  match peek st with
  | Some (Str s) ->
      advance st;
      s
  | _ -> err "expected a string literal"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_or st =
  let lhs = parse_and st in
  if at_kw st "OR" then (
    advance st;
    Binop (Or, lhs, parse_or st))
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if at_kw st "AND" then (
    advance st;
    Binop (And, lhs, parse_and st))
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Some (Punct "=") -> Some Eq
    | Some (Punct ("<>" | "!=")) -> Some Neq
    | Some (Punct "<") -> Some Lt
    | Some (Punct "<=") -> Some Leq
    | Some (Punct ">") -> Some Gt
    | Some (Punct ">=") -> Some Geq
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Binop (op, lhs, parse_add st)

and parse_add st =
  let lhs = parse_mul st in
  let rec loop lhs =
    match peek st with
    | Some (Punct "+") ->
        advance st;
        loop (Binop (Add, lhs, parse_mul st))
    | Some (Punct "-") ->
        advance st;
        loop (Binop (Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop lhs

and parse_mul st =
  let lhs = parse_primary st in
  let rec loop lhs =
    match peek st with
    | Some (Punct "*") ->
        advance st;
        loop (Binop (Mul, lhs, parse_primary st))
    | Some (Punct "/") ->
        advance st;
        loop (Binop (Div, lhs, parse_primary st))
    | _ -> lhs
  in
  loop lhs

and parse_primary st =
  match peek st with
  | Some (Str s) ->
      advance st;
      Str_lit s
  | Some (Num n) ->
      advance st;
      Int_lit n
  | Some (Punct "(") ->
      advance st;
      let e = parse_or st in
      eat_punct st ")";
      e
  | Some (Punct "*") ->
      advance st;
      Star
  | Some (Punct "-") -> (
      (* unary minus: negative literals in DML values *)
      advance st;
      match parse_primary st with
      | Int_lit n -> Int_lit (-n)
      | e -> Binop (Sub, Int_lit 0, e))
  | Some (Ident w) when upper w = "NULL" ->
      advance st;
      Null_lit
  | Some (Ident w) when upper w = "XMLTRANSFORM" ->
      advance st;
      eat_punct st "(";
      let input = parse_or st in
      eat_punct st ",";
      let ss = string_lit st in
      eat_punct st ")";
      Xml_transform (input, ss)
  | Some (Ident w) when upper w = "XMLQUERY" ->
      advance st;
      eat_punct st "(";
      let q = string_lit st in
      eat_kw st "PASSING";
      let passing = parse_or st in
      (* RETURNING CONTENT is the only supported clause *)
      eat_kw st "RETURNING";
      eat_kw st "CONTENT";
      eat_punct st ")";
      Xml_query { query = q; passing }
  | Some (Ident _) -> (
      let first = ident st in
      if at_punct st "." then (
        advance st;
        let second = ident st in
        Col (Some first, second))
      else Col (None, first))
  | _ -> err "expected an expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_select st =
  eat_kw st "SELECT";
  let rec items acc =
    let e = parse_or st in
    let alias =
      if at_kw st "AS" then (
        advance st;
        Some (ident st))
      else
        match peek st with
        | Some (Ident w) when upper w <> "FROM" ->
            advance st;
            Some w
        | _ -> None
    in
    let acc = (e, alias) :: acc in
    if at_punct st "," then (
      advance st;
      items acc)
    else List.rev acc
  in
  let items = items [] in
  eat_kw st "FROM";
  let from_name = ident st in
  let from_alias =
    match peek st with
    | Some (Ident w) when upper w <> "WHERE" ->
        advance st;
        Some w
    | _ -> None
  in
  let where =
    if at_kw st "WHERE" then (
      advance st;
      Some (parse_or st))
    else None
  in
  { items; from_name; from_alias; where }

let parse_insert st =
  eat_kw st "INSERT";
  eat_kw st "INTO";
  let table = ident st in
  let columns =
    if at_punct st "(" then (
      advance st;
      let rec cols acc =
        let c = ident st in
        if at_punct st "," then (
          advance st;
          cols (c :: acc))
        else (
          eat_punct st ")";
          List.rev (c :: acc))
      in
      Some (cols []))
    else None
  in
  eat_kw st "VALUES";
  let tuple () =
    eat_punct st "(";
    let rec vals acc =
      let e = parse_or st in
      if at_punct st "," then (
        advance st;
        vals (e :: acc))
      else (
        eat_punct st ")";
        List.rev (e :: acc))
    in
    vals []
  in
  let rec tuples acc =
    let v = tuple () in
    if at_punct st "," then (
      advance st;
      tuples (v :: acc))
    else List.rev (v :: acc)
  in
  Insert { table; columns; values = tuples [] }

let parse_update st =
  eat_kw st "UPDATE";
  let table = ident st in
  eat_kw st "SET";
  let rec sets acc =
    let c = ident st in
    eat_punct st "=";
    let e = parse_or st in
    if at_punct st "," then (
      advance st;
      sets ((c, e) :: acc))
    else List.rev ((c, e) :: acc)
  in
  let sets = sets [] in
  let where =
    if at_kw st "WHERE" then (
      advance st;
      Some (parse_or st))
    else None
  in
  Update { table; sets; where }

let parse_delete st =
  eat_kw st "DELETE";
  eat_kw st "FROM";
  let table = ident st in
  let where =
    if at_kw st "WHERE" then (
      advance st;
      Some (parse_or st))
    else None
  in
  Delete { table; where }

(** [parse s] — one statement, optionally [;]-terminated. *)
let parse (s : string) : statement =
  let st = { toks = tokenize s } in
  let stmt =
    if at_kw st "CREATE" then (
      advance st;
      eat_kw st "VIEW";
      let name = ident st in
      eat_kw st "AS";
      Create_view (name, parse_select st))
    else if at_kw st "ANALYZE" then (
      advance st;
      match peek st with
      | Some (Ident _) -> Analyze (Some (ident st))
      | _ -> Analyze None)
    else if at_kw st "INSERT" then parse_insert st
    else if at_kw st "UPDATE" then parse_update st
    else if at_kw st "DELETE" then parse_delete st
    else Select (parse_select st)
  in
  if at_punct st ";" then advance st;
  (match peek st with
  | None -> ()
  | Some _ -> err "trailing tokens after statement");
  stmt
