(** Parser for the SQL/XML fragment (see {!Ast}).  Keywords are
    case-insensitive; strings use single quotes with [''] escaping so
    complete stylesheets paste in verbatim (paper Table 5). *)

exception Parse_error of string

val parse : string -> Ast.statement
(** One statement, optionally [;]-terminated.
    @raise Parse_error on malformed input or trailing tokens. *)
