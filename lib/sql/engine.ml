(** Execution of the SQL/XML surface.

    A {!session} wraps a database, its registered XMLType publishing views
    and the XSLT views created at run time.  Execution routes every
    statement through the paper's machinery:

    - [SELECT XMLTransform(v.col, '…') FROM v] over a publishing view runs
      the full XSLT rewrite (stylesheet → XQuery → SQL/XML expression over
      the base tables, B-tree probes included) and falls back to
      functional evaluation only when the generated query leaves the
      rewritable fragment;
    - [XMLQuery('…' PASSING v.col RETURNING CONTENT)] over a publishing
      view runs the XQuery→SQL/XML rewrite directly;
    - the same over an {e XSLT view} (Example 2) applies the combined
      optimisation: the outer path composes statically over the generated
      constructor tree and the composition is rewritten to one plan;
    - plain selects over base tables run on the Volcano executor with
      index selection. *)

module A = Xdb_rel.Algebra
module V = Xdb_rel.Value
module P = Xdb_rel.Publish
module E = Xdb_rel.Exec
module Q = Xdb_xquery.Ast
open Ast

exception Sql_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Sql_error m)) fmt

type xslt_view = {
  xv_name : string;
  xv_column : string;  (** name of the transformed output column *)
  xv_compiled : Xdb_core.Pipeline.compiled;
}

type session = {
  db : Xdb_rel.Database.t;
  mutable xml_views : P.view list;
  mutable xslt_views : xslt_view list;
}

type result = {
  columns : string list;
  rows : V.t list list;
  note : string option;  (** execution-strategy remark (rewrite/fallback) *)
}

let make_session ?(views = []) db = { db; xml_views = views; xslt_views = [] }

let register_view session view = session.xml_views <- view :: session.xml_views

let find_xml_view session name =
  List.find_opt (fun v -> String.lowercase_ascii v.P.view_name = String.lowercase_ascii name)
    session.xml_views

let find_xslt_view session name =
  List.find_opt (fun v -> String.lowercase_ascii v.xv_name = String.lowercase_ascii name)
    session.xslt_views

(* ------------------------------------------------------------------ *)
(* Scalar translation to the relational algebra                        *)
(* ------------------------------------------------------------------ *)

let algebra_binop = function
  | Eq -> A.Eq
  | Neq -> A.Neq
  | Lt -> A.Lt
  | Leq -> A.Leq
  | Gt -> A.Gt
  | Geq -> A.Geq
  | And -> A.And
  | Or -> A.Or
  | Add -> A.Add
  | Sub -> A.Sub
  | Mul -> A.Mul
  | Div -> A.Div

let rec plain_expr = function
  | Col (a, c) -> A.Col (a, c)
  | Str_lit s -> A.Const (V.Str s)
  | Int_lit i -> A.Const (V.Int i)
  | Binop (op, a, b) -> A.Binop (algebra_binop op, plain_expr a, plain_expr b)
  | Star -> err "* is only allowed alone in a select list"
  | Xml_transform _ | Xml_query _ -> err "XML functions are only supported over XMLType views"

let item_name i (e, alias) =
  match alias with
  | Some a -> a
  | None -> (
      match e with
      | Col (_, c) -> c
      | _ -> Printf.sprintf "col%d" (i + 1))

(* ------------------------------------------------------------------ *)
(* Base-table selects                                                  *)
(* ------------------------------------------------------------------ *)

let run_table_select session (tbl : Xdb_rel.Table.t) (sel : select) : result =
  let alias = Option.value ~default:sel.from_name sel.from_alias in
  let scan = A.Seq_scan { table = sel.from_name; alias } in
  let filtered =
    match sel.where with None -> scan | Some w -> A.Filter (plain_expr w, scan)
  in
  let fields =
    match sel.items with
    | [ (Star, _) ] ->
        List.map (fun c -> (A.Col (None, c), c)) (Xdb_rel.Table.column_names tbl)
    | items -> List.mapi (fun i (e, alias) -> (plain_expr e, item_name i (e, alias))) items
  in
  let plan = Xdb_rel.Optimizer.optimize_deep session.db (A.Project (fields, filtered)) in
  (* projected fields occupy slots 0..n-1 of the compiled layout, in order *)
  let _, rows = E.run_arrays session.db plan in
  {
    columns = List.map snd fields;
    rows = List.map (fun (r : V.t array) -> List.mapi (fun i _ -> r.(i)) fields) rows;
    note = Some (A.plan_sql plan);
  }

(* ------------------------------------------------------------------ *)
(* XMLType-view selects                                                *)
(* ------------------------------------------------------------------ *)

(* Is [e] a reference to the view's XMLType column? *)
let is_view_column (view : P.view) alias e =
  match e with
  | Col (None, c) -> String.lowercase_ascii c = String.lowercase_ascii view.P.column
  | Col (Some a, c) ->
      String.lowercase_ascii c = String.lowercase_ascii view.P.column
      && (String.lowercase_ascii a = String.lowercase_ascii alias
         || String.lowercase_ascii a = String.lowercase_ascii view.P.view_name)
  | _ -> false

let run_xml_view_select session (view : P.view) (sel : select) : result =
  let alias = Option.value ~default:sel.from_name sel.from_alias in
  let notes = ref [] in
  (* translate each select item into a per-base-row SQL/XML expression; when
     a translation is impossible, fall back to functional evaluation for
     that item *)
  let translate_item i (e, item_alias) :
      string * [ `Sql of A.expr | `Functional of Xdb_xml.Types.node -> string ] =
    let name = item_name i (e, item_alias) in
    match e with
    | Xml_transform (input, stylesheet) when is_view_column view alias input -> (
        let compiled = Xdb_core.Pipeline.compile session.db view stylesheet in
        match compiled.Xdb_core.Pipeline.sql_plan with
        | Some _ ->
            notes :=
              Printf.sprintf "%s: XSLT rewrite (%s mode)" name
                (Xdb_core.Pipeline.mode_name
                   compiled.Xdb_core.Pipeline.translation.Xdb_core.Xslt2xquery.mode)
              :: !notes;
            ( name,
              `Sql
                (Xdb_xquery.Sql_rewrite.rewrite_prog view
                   compiled.Xdb_core.Pipeline.translation.Xdb_core.Xslt2xquery.query) )
        | None ->
            notes :=
              Printf.sprintf "%s: functional fallback (%s)" name
                (Option.value ~default:"?" compiled.Xdb_core.Pipeline.sql_fallback_reason)
              :: !notes;
            ( name,
              `Functional
                (fun doc ->
                  let frag = Xdb_xslt.Vm.transform compiled.Xdb_core.Pipeline.vm_prog doc in
                  Xdb_xml.Serializer.node_list_to_string frag.Xdb_xml.Types.children) ))
    | Xml_query { query; passing } when is_view_column view alias passing -> (
        let prog = Xdb_xquery.Parser.parse_prog query in
        match Xdb_xquery.Sql_rewrite.rewrite_prog view prog with
        | sql ->
            notes := Printf.sprintf "%s: XQuery rewrite" name :: !notes;
            (name, `Sql sql)
        | exception Xdb_xquery.Sql_rewrite.Not_rewritable reason ->
            notes := Printf.sprintf "%s: dynamic XQuery (%s)" name reason :: !notes;
            ( name,
              `Functional
                (fun doc ->
                  Xdb_xml.Serializer.node_list_to_string
                    (Xdb_xquery.Eval.run_to_nodes prog ~context:doc)) ))
    | Col _ -> (name, `Sql (plain_expr e))
    | _ -> err "unsupported select item over an XMLType view"
  in
  let items = List.mapi translate_item sel.items in
  let scan = A.Seq_scan { table = view.P.base_table; alias = view.P.base_alias } in
  let filtered =
    match sel.where with None -> scan | Some w -> A.Filter (plain_expr w, scan)
  in
  let sql_fields =
    List.filter_map (function n, `Sql e -> Some (e, n) | _, `Functional _ -> None) items
  in
  let plan =
    Xdb_rel.Optimizer.optimize_deep session.db (A.Project (sql_fields, filtered))
  in
  let layout, sql_rows = E.run_arrays session.db plan in
  (* functional items evaluate over materialised documents, row-aligned *)
  let functional_items =
    List.filter_map (function n, `Functional f -> Some (n, f) | _ -> None) items
  in
  let docs =
    if functional_items = [] then []
    else
      if sel.where <> None then
        err "WHERE is not supported together with non-rewritable XML select items"
      else P.materialize session.db view
  in
  let columns = List.map fst items in
  (* resolve every SQL item's output slot once against the plan layout *)
  let extractors =
    List.map
      (fun (n, kind) ->
        match kind with
        | `Sql _ -> (
            match Xdb_rel.Layout.slot_opt layout n with
            | Some s -> fun (r : V.t array) _ -> r.(s)
            | None -> err "plan lost column %s" n)
        | `Functional f -> fun _ row_idx -> V.Str (f (List.nth docs row_idx)))
      items
  in
  let rows =
    List.mapi (fun row_idx sql_row -> List.map (fun ex -> ex sql_row row_idx) extractors) sql_rows
  in
  { columns; rows; note = Some (String.concat "; " (List.rev !notes)) }

(* ------------------------------------------------------------------ *)
(* XSLT-view selects (Example 2)                                        *)
(* ------------------------------------------------------------------ *)

(* extract a child-step path from "for $x in ./steps return $x" or "./steps" *)
let forwarding_steps (prog : Q.prog) : Xdb_xpath.Ast.step list option =
  let plain_child_steps steps =
    if
      List.for_all
        (fun (s : Xdb_xpath.Ast.step) ->
          s.Xdb_xpath.Ast.axis = Xdb_xpath.Ast.Child && s.Xdb_xpath.Ast.predicates = [])
        steps
    then Some steps
    else None
  in
  match (prog.Q.var_decls, prog.Q.funs, prog.Q.body) with
  | [], [], Q.Path (Q.Context_item, steps) -> plain_child_steps steps
  | [], [], Q.Flwor ([ Q.For { var; source = Q.Path (Q.Context_item, steps); _ } ], Q.Var v)
    when v = var ->
      plain_child_steps steps
  | _ -> None

let run_xslt_view_select session (xv : xslt_view) (sel : select) : result =
  if sel.where <> None then err "WHERE over an XSLT view is not supported";
  let alias = Option.value ~default:sel.from_name sel.from_alias in
  let item =
    match sel.items with
    | [ (e, alias_opt) ] -> (e, item_name 0 (e, alias_opt))
    | _ -> err "exactly one select item is supported over an XSLT view"
  in
  match item with
  | Xml_query { query; passing }, name
    when (match passing with
         | Col (None, c) -> String.lowercase_ascii c = String.lowercase_ascii xv.xv_column
         | Col (Some a, c) ->
             String.lowercase_ascii c = String.lowercase_ascii xv.xv_column
             && (String.lowercase_ascii a = String.lowercase_ascii alias
                || String.lowercase_ascii a = String.lowercase_ascii xv.xv_name)
         | _ -> false) -> (
      let prog = Xdb_xquery.Parser.parse_prog query in
      let combined_plan, composed, note =
        match forwarding_steps prog with
        | Some steps ->
            let plan, composed = Xdb_core.Pipeline.compose session.db xv.xv_compiled steps in
            (plan, Some composed, "combined XSLT+XQuery optimisation")
        | None -> (None, None, "dynamic evaluation over the XSLT view result")
      in
      match (combined_plan, composed) with
      | Some plan, _ ->
          let layout, rows = E.run_arrays session.db plan in
          let slot =
            match Xdb_rel.Layout.slot_opt layout "result" with
            | Some s -> s
            | None -> err "combined plan produced no result column"
          in
          {
            columns = [ name ];
            rows = List.map (fun (r : V.t array) -> [ r.(slot) ]) rows;
            note = Some (note ^ " (paper Table 11 plan)");
          }
      | None, Some composed ->
          let outs =
            Xdb_core.Pipeline.run_composed_dynamic session.db xv.xv_compiled composed
          in
          { columns = [ name ]; rows = List.map (fun s -> [ V.Str s ]) outs; note = Some note }
      | None, None ->
          (* evaluate the XSLT view, then the outer query on each result *)
          let inner = Xdb_core.Pipeline.run_rewrite session.db xv.xv_compiled in
          let outs =
            List.map
              (fun text ->
                let doc = Xdb_xml.Parser.parse_fragment text in
                let wrapper = Xdb_xml.Parser.document_element doc in
                V.Str
                  (Xdb_xml.Serializer.node_list_to_string
                     (Xdb_xquery.Eval.run_to_nodes prog ~context:wrapper)))
              inner
          in
          { columns = [ name ]; rows = List.map (fun v -> [ v ]) outs; note = Some note })
  | Col (_, c), name when String.lowercase_ascii c = String.lowercase_ascii xv.xv_column ->
      let outs = Xdb_core.Pipeline.run_rewrite session.db xv.xv_compiled in
      {
        columns = [ name ];
        rows = List.map (fun s -> [ V.Str s ]) outs;
        note = Some "XSLT view evaluated through the rewrite";
      }
  | _ -> err "unsupported select item over an XSLT view"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let run_select session (sel : select) : result =
  match find_xslt_view session sel.from_name with
  | Some xv -> run_xslt_view_select session xv sel
  | None -> (
      match find_xml_view session sel.from_name with
      | Some view -> run_xml_view_select session view sel
      | None -> (
          match Xdb_rel.Database.table_opt session.db sel.from_name with
          | Some tbl -> run_table_select session tbl sel
          | None -> err "unknown table or view %S" sel.from_name))

let run_analyze session target : result =
  let analyzed =
    match target with
    | Some name -> (
        match Xdb_rel.Database.table_opt session.db name with
        | None -> err "ANALYZE: unknown table %S" name
        | Some _ -> [ (name, Xdb_rel.Analyze.table session.db name) ])
    | None -> Xdb_rel.Analyze.all session.db
  in
  {
    columns = [ "table_name"; "rows_sampled" ];
    rows = List.map (fun (n, c) -> [ V.Str n; V.Int c ]) analyzed;
    note =
      Some
        (Printf.sprintf "statistics collected for %d table(s), stats version %d"
           (List.length analyzed)
           (Xdb_rel.Database.stats_version session.db));
  }

(** [execute session statement_text] — parse and run one statement. *)
let execute session (text : string) : result =
  match Parser.parse text with
  | Select sel -> run_select session sel
  | Analyze target -> run_analyze session target
  | Create_view (name, sel) -> (
      (* only XSLT views (a single XMLTransform over a publishing view) can
         be created from SQL; publishing views are registered via the API *)
      match find_xml_view session sel.from_name with
      | None -> err "CREATE VIEW: FROM must name a registered XMLType view"
      | Some view -> (
          match sel.items with
          | [ (Xml_transform (input, stylesheet), alias) ]
            when is_view_column view (Option.value ~default:sel.from_name sel.from_alias) input
            ->
              if sel.where <> None then err "CREATE VIEW: WHERE is not supported";
              let compiled = Xdb_core.Pipeline.compile session.db view stylesheet in
              let column = Option.value ~default:"xslt_rslt" alias in
              session.xslt_views <-
                { xv_name = name; xv_column = column; xv_compiled = compiled }
                :: session.xslt_views;
              {
                columns = [];
                rows = [];
                note =
                  Some
                    (Printf.sprintf "XSLT view %s(%s) created (%s mode)" name column
                       (Xdb_core.Pipeline.mode_name
                          compiled.Xdb_core.Pipeline.translation.Xdb_core.Xslt2xquery.mode));
              }
          | _ -> err "CREATE VIEW: body must be a single XMLTransform over the view column"))

(** Fixed-width rendering of a result for CLI/example output. *)
let render (r : result) : string =
  let buf = Buffer.create 256 in
  (match r.note with Some n -> Buffer.add_string buf ("-- " ^ n ^ "\n") | None -> ());
  if r.columns <> [] then (
    Buffer.add_string buf (String.concat " | " r.columns);
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make 40 '-');
    Buffer.add_char buf '\n';
    List.iter
      (fun row ->
        Buffer.add_string buf (String.concat " | " (List.map V.to_string row));
        Buffer.add_char buf '\n')
      r.rows);
  Buffer.contents buf
