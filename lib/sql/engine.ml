(** Execution of the plain-relational SQL surface.

    This layer owns every statement that touches only relational state:
    base-table SELECTs (Volcano executor with index selection), ANALYZE,
    and the DML statements — INSERT/UPDATE/DELETE with B-tree index
    maintenance, two-phase validation (nothing mutates until the whole
    statement has type-checked) and a per-table [data_version] bump so
    higher layers can invalidate cached transform results precisely.

    Statements that involve XMLType or XSLT views route through
    [Xdb_core.Sql_front], which reuses the scalar translation exported
    here; the dependency points from the core facade down into this
    library, never back. *)

module A = Xdb_rel.Algebra
module V = Xdb_rel.Value
module E = Xdb_rel.Exec
module T = Xdb_rel.Table
open Ast

exception Sql_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Sql_error m)) fmt

(* column resolution failures are statement-validation errors, not
   executor faults: surface them as Sql_error so a bad column name in
   DML fails the statement the same way any other validation does *)
let col_pos tbl name = try T.column_pos tbl name with T.Table_error m -> err "%s" m

type result = {
  columns : string list;
  rows : V.t list list;
  note : string option;  (** execution-strategy remark (rewrite/fallback) *)
}

(* ------------------------------------------------------------------ *)
(* Scalar translation to the relational algebra                        *)
(* ------------------------------------------------------------------ *)

let algebra_binop = function
  | Eq -> A.Eq
  | Neq -> A.Neq
  | Lt -> A.Lt
  | Leq -> A.Leq
  | Gt -> A.Gt
  | Geq -> A.Geq
  | And -> A.And
  | Or -> A.Or
  | Add -> A.Add
  | Sub -> A.Sub
  | Mul -> A.Mul
  | Div -> A.Div

let rec plain_expr = function
  | Col (a, c) -> A.Col (a, c)
  | Str_lit s -> A.Const (V.Str s)
  | Int_lit i -> A.Const (V.Int i)
  | Null_lit -> A.Const V.Null
  | Binop (op, a, b) -> A.Binop (algebra_binop op, plain_expr a, plain_expr b)
  | Star -> err "* is only allowed alone in a select list"
  | Xml_transform _ | Xml_query _ -> err "XML functions are only supported over XMLType views"

let item_name i (e, alias) =
  match alias with
  | Some a -> a
  | None -> (
      match e with
      | Col (_, c) -> c
      | _ -> Printf.sprintf "col%d" (i + 1))

(* Is [e] a reference to the view's XMLType column? *)
let is_view_column (view : Xdb_rel.Publish.view) alias e =
  let module P = Xdb_rel.Publish in
  match e with
  | Col (None, c) -> String.lowercase_ascii c = String.lowercase_ascii view.P.column
  | Col (Some a, c) ->
      String.lowercase_ascii c = String.lowercase_ascii view.P.column
      && (String.lowercase_ascii a = String.lowercase_ascii alias
         || String.lowercase_ascii a = String.lowercase_ascii view.P.view_name)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Base-table selects                                                  *)
(* ------------------------------------------------------------------ *)

let run_table_select db (tbl : T.t) (sel : select) : result =
  let alias = Option.value ~default:sel.from_name sel.from_alias in
  let scan = A.Seq_scan { table = sel.from_name; alias } in
  let filtered =
    match sel.where with None -> scan | Some w -> A.Filter (plain_expr w, scan)
  in
  let fields =
    match sel.items with
    | [ (Star, _) ] -> List.map (fun c -> (A.Col (None, c), c)) (T.column_names tbl)
    | items -> List.mapi (fun i (e, alias) -> (plain_expr e, item_name i (e, alias))) items
  in
  let plan = Xdb_rel.Optimizer.optimize_deep db (A.Project (fields, filtered)) in
  (* projected fields occupy slots 0..n-1 of the compiled layout, in order *)
  let _, rows = E.run_arrays db plan in
  {
    columns = List.map snd fields;
    rows = List.map (fun (r : V.t array) -> List.mapi (fun i _ -> r.(i)) fields) rows;
    note = Some (A.plan_sql plan);
  }

(* ------------------------------------------------------------------ *)
(* ANALYZE                                                             *)
(* ------------------------------------------------------------------ *)

let run_analyze db target : result =
  let analyzed =
    match target with
    | Some name -> (
        match Xdb_rel.Database.table_opt db name with
        | None -> err "ANALYZE: unknown table %S" name
        | Some _ -> [ (name, Xdb_rel.Analyze.table db name) ])
    | None -> Xdb_rel.Analyze.all db
  in
  {
    columns = [ "table_name"; "rows_sampled" ];
    rows = List.map (fun (n, c) -> [ V.Str n; V.Int c ]) analyzed;
    note =
      Some
        (Printf.sprintf "statistics collected for %d table(s), stats version %d"
           (List.length analyzed)
           (Xdb_rel.Database.stats_version db));
  }

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)
(* ------------------------------------------------------------------ *)

(* row-context evaluation of the restricted expression grammar: SET
   right-hand sides and WHERE predicates over the target table's row.
   Comparisons yield Int 1/0; NULL propagates SQL-style (a comparison
   against NULL is false, arithmetic over NULL is NULL). *)
let rec eval_row (tbl : T.t) (row : V.t array) = function
  | Col (_, c) -> row.(col_pos tbl c)
  | Str_lit s -> V.Str s
  | Int_lit i -> V.Int i
  | Null_lit -> V.Null
  | Star -> err "* is not a value"
  | Xml_transform _ | Xml_query _ -> err "XML functions are not supported in DML"
  | Binop (op, a, b) -> (
      let va = eval_row tbl row a and vb = eval_row tbl row b in
      let bool_v b = if b then V.Int 1 else V.Int 0 in
      let cmp f = bool_v (match V.compare_sql va vb with Some c -> f c | None -> false) in
      let truthy = function
        | V.Null | V.Int 0 -> false
        | V.Float f -> f <> 0.0
        | _ -> true
      in
      let arith fi ff =
        match (va, vb) with
        | V.Null, _ | _, V.Null -> V.Null
        | V.Int x, V.Int y -> V.Int (fi x y)
        | (V.Int _ | V.Float _), (V.Int _ | V.Float _) ->
            V.Float (ff (V.to_float va) (V.to_float vb))
        | _ -> err "arithmetic over non-numeric values"
      in
      match op with
      | Eq -> cmp (fun c -> c = 0)
      | Neq -> cmp (fun c -> c <> 0)
      | Lt -> cmp (fun c -> c < 0)
      | Leq -> cmp (fun c -> c <= 0)
      | Gt -> cmp (fun c -> c > 0)
      | Geq -> cmp (fun c -> c >= 0)
      | And -> bool_v (truthy va && truthy vb)
      | Or -> bool_v (truthy va || truthy vb)
      | Add -> arith ( + ) ( +. )
      | Sub -> arith ( - ) ( -. )
      | Mul -> arith ( * ) ( *. )
      | Div ->
          if (match vb with V.Int 0 -> true | V.Float 0.0 -> true | _ -> false) then
            err "division by zero"
          else arith ( / ) ( /. ))

let truthy = function
  | V.Null | V.Int 0 -> false
  | V.Float f -> f <> 0.0
  | _ -> true

(* coerce an evaluated value to the column's declared type, or fail the
   whole statement — called during the validation phase, before any
   mutation *)
let coerce_to_column tbl (col : T.column) v =
  match (col.T.col_type, v) with
  | _, V.Null -> V.Null
  | V.Tint, V.Int _ -> v
  | V.Tfloat, V.Float _ -> v
  | V.Tfloat, V.Int i -> V.Float (float_of_int i)
  | V.Tstr, V.Str _ -> v
  | _ ->
      err "type mismatch for %s.%s: %s value does not fit %s" tbl.T.tbl_name col.T.col_name
        (V.value_type_name v) (V.type_name col.T.col_type)

let dml_note db table verb n =
  Printf.sprintf "%d row(s) %s, %s data version %d%s" n verb table
    (Xdb_rel.Database.data_version db table)
    (if Xdb_rel.Database.stats_stale db table then " (statistics stale)" else "")

let affected n note = { columns = [ "rows_affected" ]; rows = [ [ V.Int n ] ]; note = Some note }

let target_table db name =
  match Xdb_rel.Database.table_opt db name with
  | Some t -> t
  | None -> err "unknown table %S" name

let run_insert db ~table ~columns ~values : result =
  let tbl = target_table db table in
  let ncols = Array.length tbl.T.columns in
  (* phase 1: resolve positions and evaluate/coerce every row *)
  let positions =
    match columns with
    | None -> Array.init ncols (fun i -> i)
    | Some cols -> Array.of_list (List.map (col_pos tbl) cols)
  in
  let rec check_const = function
    | Col _ -> err "INSERT values must be constant expressions"
    | Binop (_, a, b) ->
        check_const a;
        check_const b
    | _ -> ()
  in
  let dummy = [||] in
  let rows =
    List.map
      (fun exprs ->
        if List.length exprs <> Array.length positions then
          err "INSERT arity mismatch: %d value(s) for %d column(s)" (List.length exprs)
            (Array.length positions);
        let row = Array.make ncols V.Null in
        List.iteri
          (fun i e ->
            check_const e;
            let pos = positions.(i) in
            row.(pos) <- coerce_to_column tbl tbl.T.columns.(pos) (eval_row tbl dummy e))
          exprs;
        row)
      values
  in
  (* phase 2: mutate *)
  List.iter (fun row -> ignore (T.insert tbl row)) rows;
  let n = List.length rows in
  if n > 0 then Xdb_rel.Database.bump_data_version db table;
  affected n (dml_note db table "inserted" n)

let run_update db ~table ~sets ~where : result =
  let tbl = target_table db table in
  (* phase 1: resolve SET columns, select rows, evaluate and coerce every
     new value — any failure leaves the table untouched *)
  let sets =
    List.map
      (fun (c, e) ->
        let pos = col_pos tbl c in
        (pos, tbl.T.columns.(pos), e))
      sets
  in
  let pending = ref [] in
  T.iter
    (fun rid row ->
      let matches = match where with None -> true | Some w -> truthy (eval_row tbl row w) in
      if matches then
        let news =
          List.map (fun (pos, col, e) -> (pos, coerce_to_column tbl col (eval_row tbl row e))) sets
        in
        pending := (rid, news) :: !pending)
    tbl;
  (* phase 2: mutate (index maintenance inside Table.update) *)
  let pending = List.rev !pending in
  List.iter (fun (rid, news) -> T.update tbl rid news) pending;
  let n = List.length pending in
  if n > 0 then Xdb_rel.Database.bump_data_version db table;
  affected n (dml_note db table "updated" n)

let run_delete db ~table ~where : result =
  let tbl = target_table db table in
  let rids = ref [] in
  T.iter
    (fun rid row ->
      let matches = match where with None -> true | Some w -> truthy (eval_row tbl row w) in
      if matches then rids := rid :: !rids)
    tbl;
  let n = T.delete tbl (List.rev !rids) in
  if n > 0 then Xdb_rel.Database.bump_data_version db table;
  affected n (dml_note db table "deleted" n)

(** [run_dml db stmt] — execute one INSERT/UPDATE/DELETE.  Validation is
    two-phase: positions, arities and value types are all checked before
    the first row mutates, so a failed statement leaves the table {e and}
    its data version untouched. *)
let run_dml db (stmt : statement) : result =
  match stmt with
  | Insert { table; columns; values } -> run_insert db ~table ~columns ~values
  | Update { table; sets; where } -> run_update db ~table ~sets ~where
  | Delete { table; where } -> run_delete db ~table ~where
  | Select _ | Create_view _ | Analyze _ -> invalid_arg "run_dml: not a DML statement"

let dml_target = function
  | Insert { table; _ } | Update { table; _ } | Delete { table; _ } -> Some table
  | Select _ | Create_view _ | Analyze _ -> None

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(** Fixed-width rendering of a result for CLI/example output. *)
let render (r : result) : string =
  let buf = Buffer.create 256 in
  (match r.note with Some n -> Buffer.add_string buf ("-- " ^ n ^ "\n") | None -> ());
  if r.columns <> [] then (
    Buffer.add_string buf (String.concat " | " r.columns);
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make 40 '-');
    Buffer.add_char buf '\n';
    List.iter
      (fun row ->
        Buffer.add_string buf (String.concat " | " (List.map V.to_string row));
        Buffer.add_char buf '\n')
      r.rows);
  Buffer.contents buf
