(** Abstract syntax of the SQL/XML surface.

    The fragment is the one the paper's examples are written in (Tables 5,
    9 and 10): single-table SELECTs over tables and XMLType views, the
    SQL/XML query functions [XMLTransform] and [XMLQuery … PASSING …
    RETURNING CONTENT], and [CREATE VIEW] for wrapping a transformation as
    an XSLT view (Example 2). *)

type expr =
  | Col of string option * string  (** [alias.column] or [column] *)
  | Str_lit of string
  | Int_lit of int
  | Star  (** [*] in a select list *)
  | Binop of binop * expr * expr
  | Xml_transform of expr * string  (** [XMLTransform(xmltype, 'stylesheet')] *)
  | Xml_query of { query : string; passing : expr }
      (** [XMLQuery('q' PASSING e RETURNING CONTENT)] *)

and binop = Eq | Neq | Lt | Leq | Gt | Geq | And | Or | Add | Sub | Mul | Div

type select = {
  items : (expr * string option) list;  (** select list with optional AS *)
  from_name : string;
  from_alias : string option;
  where : expr option;
}

type statement =
  | Select of select
  | Create_view of string * select  (** [CREATE VIEW name AS SELECT …] *)
  | Analyze of string option
      (** [ANALYZE [table]] — collect optimizer statistics for one table,
          or for every table in the catalog when no name is given *)

let binop_name = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="
  | And -> "AND"
  | Or -> "OR"
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
