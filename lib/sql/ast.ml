(** Abstract syntax of the SQL/XML surface.

    The fragment is the one the paper's examples are written in (Tables 5,
    9 and 10): single-table SELECTs over tables and XMLType views, the
    SQL/XML query functions [XMLTransform] and [XMLQuery … PASSING …
    RETURNING CONTENT], and [CREATE VIEW] for wrapping a transformation as
    an XSLT view (Example 2) — plus the single-table DML statements
    ([INSERT]/[UPDATE]/[DELETE]) that make the storage writable, the
    signal the data-versioned result cache invalidates on. *)

type expr =
  | Col of string option * string  (** [alias.column] or [column] *)
  | Str_lit of string
  | Int_lit of int
  | Null_lit  (** the [NULL] keyword *)
  | Star  (** [*] in a select list *)
  | Binop of binop * expr * expr
  | Xml_transform of expr * string  (** [XMLTransform(xmltype, 'stylesheet')] *)
  | Xml_query of { query : string; passing : expr }
      (** [XMLQuery('q' PASSING e RETURNING CONTENT)] *)

and binop = Eq | Neq | Lt | Leq | Gt | Geq | And | Or | Add | Sub | Mul | Div

type select = {
  items : (expr * string option) list;  (** select list with optional AS *)
  from_name : string;
  from_alias : string option;
  where : expr option;
}

type statement =
  | Select of select
  | Create_view of string * select  (** [CREATE VIEW name AS SELECT …] *)
  | Analyze of string option
      (** [ANALYZE [table]] — collect optimizer statistics for one table,
          or for every table in the catalog when no name is given *)
  | Insert of { table : string; columns : string list option; values : expr list list }
      (** [INSERT INTO t [(c, …)] VALUES (e, …), (e, …), …] — value
          expressions must be constant (no column references) *)
  | Update of { table : string; sets : (string * expr) list; where : expr option }
      (** [UPDATE t SET c = e, … [WHERE p]] — [e] and [p] may reference
          the row's own columns ([SET qty = qty + 1]) *)
  | Delete of { table : string; where : expr option }
      (** [DELETE FROM t [WHERE p]] *)

let binop_name = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="
  | And -> "AND"
  | Or -> "OR"
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
