(** Rewrite option toggles — one flag per §3.3–3.7 technique plus the §7.2
    partial-inline extension, so the ablation bench can measure each
    contribution. *)

type t = {
  inline_templates : bool;  (** §3.3 template instantiation inlining *)
  use_model_groups : bool;  (** §3.4 children instantiation by model group *)
  use_cardinality : bool;  (** §3.4 LET vs FOR from cardinality *)
  remove_backward_tests : bool;  (** §3.5 parent-axis test elimination *)
  builtin_compaction : bool;  (** §3.6 built-in-template-only compaction *)
  remove_dead_templates : bool;  (** §3.7 non-instantiated template removal *)
  partial_inline : bool;
      (** §4.4/§7.2 extension: inline the acyclic portion of a recursive
          stylesheet; off by default (the paper has only two modes) *)
}

val default : t
(** Everything on, partial-inline off — the paper's configuration. *)

val with_partial_inline : t
(** {!default} plus the §7.2 partial-inline extension. *)

val straightforward : t
(** The straightforward translation of [9]: no structural information. *)

val to_string : t -> string

val to_json : t -> string
(** Stable JSON object of the toggles, paper-section order. *)
