(** Partial evaluation of a stylesheet over a sample document (paper §4.3):
    run the trace-instrumented XSLTVM on the structural sample and build the
    {e template execution graph} and the per-site {e trace-call-lists}.

    Graph states correspond to template instantiations; a transition records
    the apply/call site and the sample node that caused the activation.
    Recursion (a template re-entered while still on the activation stack)
    switches query generation to non-inline mode (§4.4). *)

module X = Xdb_xml.Types
module C = Xdb_xslt.Compile
module V = Xdb_xslt.Vm

type gstate = {
  id : int;
  template : int option;  (** [None] = built-in rule *)
  context : X.node;  (** sample-document node this instantiation ran on *)
  mutable transitions : transition list;  (** in activation order *)
}

and transition = {
  site : int option;  (** apply/call site; [None] = built-in implicit apply *)
  target : gstate;
}

type t = {
  root : gstate;  (** initial activation on the sample document root *)
  states : gstate list;  (** all states, in creation order *)
  recursive : bool;  (** template re-entered while active *)
  instantiated : int list;  (** user template ids that fired, sorted *)
  n_states : int;
}

exception Trace_error of string

(** [run prog sample_doc] — execute the VM over the sample document with
    trace instructions enabled and assemble the graph. *)
let run (prog : C.program) (sample_doc : X.node) : t =
  let counter = ref 0 in
  let states = ref [] in
  let stack : gstate list ref = ref [] in
  let root_state = ref None in
  let recursive = ref false in
  let sink = function
    | V.Ev_enter { template; node; site } ->
        (* recursion check: same user template already on the stack *)
        (match template with
        | Some tid ->
            if List.exists (fun s -> s.template = Some tid) !stack then recursive := true
        | None -> ());
        let state =
          { id = !counter; template; context = node; transitions = [] }
        in
        incr counter;
        states := state :: !states;
        (match !stack with
        | parent :: _ -> parent.transitions <- parent.transitions @ [ { site; target = state } ]
        | [] -> root_state := Some state);
        stack := state :: !stack
    | V.Ev_exit -> (
        match !stack with
        | _ :: rest -> stack := rest
        | [] -> raise (Trace_error "unbalanced trace events"))
  in
  ignore (V.transform ~trace:sink prog sample_doc);
  let root =
    match !root_state with
    | Some s -> s
    | None -> raise (Trace_error "no template was activated on the sample document")
  in
  let instantiated =
    List.filter_map (fun s -> s.template) !states |> List.sort_uniq compare
  in
  { root; states = List.rev !states; recursive = !recursive; instantiated; n_states = !counter }

(** Transitions of [state] grouped by site, preserving activation order
    within each site (the §4.3 trace-call-list of an apply-templates). *)
let call_list state ~site =
  List.filter (fun tr -> tr.site = site) state.transitions

(** Pretty-printer for debugging and EXPERIMENTS.md extracts. *)
let to_string (g : t) =
  let buf = Buffer.create 256 in
  let rec go depth s =
    let name =
      match s.template with None -> "builtin" | Some i -> Printf.sprintf "template#%d" i
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s on <%s>\n"
         (String.make (2 * depth) ' ')
         name
         (match s.context.X.kind with
         | X.Element q -> q.local
         | X.Document -> "#document"
         | X.Text _ -> "#text"
         | _ -> "#other"));
    List.iter (fun tr -> go (depth + 1) tr.target) s.transitions
  in
  go 0 g.root;
  if g.recursive then Buffer.add_string buf "(recursive)\n";
  Buffer.contents buf
