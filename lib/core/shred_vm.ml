(** The shredded XSLTVM: the {!Xdb_xslt.Vm} bytecode interpreter re-based
    on relational node rows.  Template match patterns run through
    {!Xdb_rel.Shred.pattern_matches} and select/test expressions through
    {!Xdb_rel.Shred.eval_expr}, so matching and select iteration execute
    as set-at-a-time scans over the node table — the input document is
    never rebuilt.  The only DOM the interpreter touches is (a) the result
    fragment it constructs and (b) {!Xdb_rel.Shred.subtree} copies of the
    subtrees a template actually serialises ([xsl:copy-of] / built-in
    rules never need one: they read the [value] column).

    Mirrors {!Xdb_xslt.Vm} op for op — output is byte-identical to the
    functional path.  Constructs the relational engine cannot express
    ({!Xdb_rel.Shred.Unsupported}), plus [xsl:key] and active whitespace
    stripping, raise {!Fallback}; the caller then reconstructs the
    document and runs the DOM VM, so answers never degrade — only
    speed. *)

module X = Xdb_xml.Types
module E = Xdb_xml.Events
module XA = Xdb_xpath.Ast
module SH = Xdb_rel.Shred
module C = Xdb_xslt.Compile
module Ast = Xdb_xslt.Ast

exception Fallback of string

let fallback fmt = Printf.ksprintf (fun m -> raise (Fallback m)) fmt

let err fmt = Printf.ksprintf (fun m -> raise (Xdb_xslt.Vm.Runtime_error m)) fmt

module Smap = SH.Smap

(* a variable's value: a shredded XPath value, or a constructed result
   fragment (xsl:variable with content).  Fragments have no rows, so an
   expression referencing one leaves the relational subset — the binding
   is withheld from {!SH.eval_expr}'s environment and the resulting
   unbound-variable {!SH.Unsupported} triggers the per-document DOM
   fallback; only whole-variable references ([select="$v"]) stay
   relational. *)
type vval = V_shred of SH.value | V_frag of X.node

type ctx = {
  row : SH.node;
  position : int;
  size : int;
  vars : vval Smap.t;
  mode : string option;
}

type state = {
  prog : C.program;
  shred : SH.t;
  mutable builders : E.builder list;
  mutable messages : string list;
  mutable recursion : int;
}

let max_recursion = 2000

(* ------------------------------------------------------------------ *)
(* Output construction (identical to Vm's)                             *)
(* ------------------------------------------------------------------ *)

let result_builder () = E.tree_builder ~merge_text:true ~drop_top_attrs:true ()

let cur_builder st = match st.builders with b :: _ -> b | [] -> err "no output context"

let b_emit st ev =
  try E.builder_emit (cur_builder st) ev with E.Serialize_error m -> err "%s" m

let b_add st n =
  try E.builder_add_node (cur_builder st) n with E.Serialize_error m -> err "%s" m

let emit_text st s = b_emit st (E.Text s)

let with_fragment st f =
  let b = result_builder () in
  st.builders <- b :: st.builders;
  f ();
  st.builders <- List.tl st.builders;
  let frag = X.make X.Document in
  X.set_children frag (E.builder_result b);
  frag

(* ------------------------------------------------------------------ *)
(* Expression evaluation over rows                                     *)
(* ------------------------------------------------------------------ *)

(* the relational environment: every shredded binding, fragments withheld
   (see {!vval}) *)
let shred_vars vars =
  Smap.fold
    (fun k v acc -> match v with V_shred sv -> Smap.add k sv acc | V_frag _ -> acc)
    vars Smap.empty

let eval_xpath st ctx e =
  SH.eval_expr st.shred ~vars:(shred_vars ctx.vars) ~position:ctx.position
    ~size:ctx.size ctx.row e

(* whole-variable references pass fragments through without touching the
   relational evaluator *)
let eval_select st ctx (e : XA.expr) : vval =
  match e with
  | XA.Var v -> (
      match Smap.find_opt v ctx.vars with
      | Some x -> x
      | None -> fallback "unbound variable $%s" v)
  | _ -> V_shred (eval_xpath st ctx e)

let vval_string = function
  | V_shred v -> SH.value_string v
  | V_frag f -> X.string_value f

let vval_bool = function
  | V_shred v -> SH.value_bool v
  | V_frag _ -> true (* a result fragment is a non-empty node-set *)

let eval_avt st ctx (a : Ast.avt) =
  String.concat ""
    (List.map
       (function
         | Ast.Avt_str s -> s
         | Ast.Avt_expr e -> SH.value_string (eval_xpath st ctx e))
       a)

let row_qname (r : SH.node) = X.qname ~prefix:r.SH.prefix ~uri:r.SH.uri r.SH.name

(* ------------------------------------------------------------------ *)
(* Template matching                                                   *)
(* ------------------------------------------------------------------ *)

(* hash-bucket candidates, mirroring Vm.candidate_ids over row kinds *)
let candidate_ids st mode (r : SH.node) =
  match List.assoc_opt mode !(st.prog.C.dispatch) with
  | None -> []
  | Some table ->
      let name_hits =
        match r.SH.kind with
        | "elem" | "attr" -> (
            match Hashtbl.find_opt table.C.by_elem_name r.SH.name with
            | Some b -> !b
            | None -> [])
        | _ -> []
      in
      let kind_hits =
        match r.SH.kind with
        | "elem" | "attr" -> !(table.C.any_element)
        | "text" -> !(table.C.text_bucket)
        | "comment" -> !(table.C.comment_bucket)
        | "pi" -> !(table.C.pi_bucket)
        | _ -> !(table.C.root_bucket)
      in
      name_hits @ kind_hits @ !(table.C.untyped)

(* best matching template id: ties break by priority, then document order
   (later wins) — exactly Vm.find_template with relational matching *)
let find_template st ctx (r : SH.node) mode =
  let vars = shred_vars ctx.vars in
  let best =
    List.fold_left
      (fun best id ->
        let ct = st.prog.C.templates.(id) in
        match ct.C.pattern with
        | None -> best
        | Some (pat, prio) ->
            if SH.pattern_matches st.shred ~vars pat r then
              match best with
              | Some (_, bprio, bsrc)
                when bprio > prio || (bprio = prio && bsrc > ct.C.source_index) ->
                  best
              | _ -> Some (id, prio, ct.C.source_index)
            else best)
      None (candidate_ids st mode r)
  in
  Option.map (fun (id, _, _) -> id) best

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let sort_rows st ctx (sorts : Ast.sort_spec list) rows =
  if sorts = [] then rows
  else
    let size = List.length rows in
    let keyed =
      List.mapi
        (fun i r ->
          let c = { ctx with row = r; position = i + 1; size } in
          let keys =
            List.map
              (fun (s : Ast.sort_spec) ->
                let v = eval_xpath st c s.Ast.sort_key in
                if s.Ast.numeric then `Num (SH.value_number v)
                else `Str (SH.value_string v))
              sorts
          in
          (keys, r))
        rows
    in
    let cmp (ka, _) (kb, _) =
      let rec go ks (ss : Ast.sort_spec list) =
        match (ks, ss) with
        | [], _ | _, [] -> 0
        | (a, b) :: krest, s :: srest -> (
            let c =
              match (a, b) with
              | `Num x, `Num y -> compare x y
              | `Str x, `Str y -> compare x y
              | `Num _, `Str _ -> -1
              | `Str _, `Num _ -> 1
            in
            let c = if s.Ast.descending then -c else c in
            match c with 0 -> go krest srest | c -> c)
      in
      go (List.combine ka kb) sorts
    in
    List.map snd (List.stable_sort cmp keyed)

let rec exec_ops_with_vars st ctx code =
  let _ =
    Array.fold_left
      (fun ctx op -> match exec_op_binding st ctx op with Some ctx' -> ctx' | None -> ctx)
      ctx code
  in
  ()

and exec_op_binding st ctx (op : C.op) : ctx option =
  match op with
  | C.O_text s ->
      emit_text st s;
      None
  | C.O_value_of e ->
      emit_text st (vval_string (eval_select st ctx e));
      None
  | C.O_copy_of e ->
      (match eval_select st ctx e with
      | V_frag f -> List.iter (fun c -> b_add st (X.deep_copy c)) f.X.children
      | V_shred (SH.V_rows rs) ->
          List.iter
            (fun (r : SH.node) ->
              if r.SH.kind = "doc" then
                List.iter (fun c -> b_add st (SH.subtree st.shred c)) (SH.children st.shred r)
              else b_add st (SH.subtree st.shred r))
            rs
      | V_shred v -> emit_text st (SH.value_string v));
      None
  | C.O_copy body ->
      (match ctx.row.SH.kind with
      | "elem" ->
          b_emit st (E.Start_element (row_qname ctx.row));
          exec_ops_with_vars st ctx body;
          b_emit st E.End_element
      | "doc" -> exec_ops_with_vars st ctx body
      | "text" -> emit_text st ctx.row.SH.value
      | "comment" -> b_emit st (E.Comment ctx.row.SH.value)
      | "pi" -> b_emit st (E.Pi (ctx.row.SH.name, ctx.row.SH.value))
      | "attr" -> b_emit st (E.Attr (row_qname ctx.row, ctx.row.SH.value))
      | k -> err "unknown node kind %S" k);
      None
  | C.O_literal_elem (name, attrs, body) ->
      b_emit st (E.Start_element (X.qname name));
      List.iter
        (fun (an, avt) -> b_emit st (E.Attr (X.qname an, eval_avt st ctx avt)))
        attrs;
      exec_ops_with_vars st ctx body;
      b_emit st E.End_element;
      None
  | C.O_elem (name_avt, body) ->
      b_emit st (E.Start_element (X.qname (eval_avt st ctx name_avt)));
      exec_ops_with_vars st ctx body;
      b_emit st E.End_element;
      None
  | C.O_attr (name_avt, body) ->
      let frag = with_fragment st (fun () -> exec_ops_with_vars st ctx body) in
      b_emit st (E.Attr (X.qname (eval_avt st ctx name_avt), X.string_value frag));
      None
  | C.O_comment body ->
      let frag = with_fragment st (fun () -> exec_ops_with_vars st ctx body) in
      b_emit st (E.Comment (X.string_value frag));
      None
  | C.O_pi (target_avt, body) ->
      let frag = with_fragment st (fun () -> exec_ops_with_vars st ctx body) in
      b_emit st (E.Pi (eval_avt st ctx target_avt, X.string_value frag));
      None
  | C.O_if (test, body) ->
      if vval_bool (eval_select st ctx test) then exec_ops_with_vars st ctx body;
      None
  | C.O_choose branches ->
      let rec go = function
        | [] -> ()
        | (None, body) :: _ -> exec_ops_with_vars st ctx body
        | (Some t, body) :: rest ->
            if vval_bool (eval_select st ctx t) then exec_ops_with_vars st ctx body
            else go rest
      in
      go branches;
      None
  | C.O_for_each (select, sorts, body) ->
      let rows =
        match eval_select st ctx select with
        | V_shred (SH.V_rows rs) -> rs
        | _ -> err "for-each select must be a node-set"
      in
      let rows = sort_rows st ctx sorts rows in
      let size = List.length rows in
      List.iteri
        (fun i r ->
          exec_ops_with_vars st { ctx with row = r; position = i + 1; size } body)
        rows;
      None
  | C.O_var (name, v) ->
      let value = eval_cvalue st ctx v in
      Some { ctx with vars = Smap.add name value ctx.vars }
  | C.O_number _format ->
      (* level="single": 1 + preceding siblings with the same expanded name *)
      let r = ctx.row in
      let count =
        match SH.parent_row st.shred r with
        | None -> 1
        | Some p ->
            let rec upto acc = function
              | [] -> acc
              | (x : SH.node) :: _ when x.SH.pre = r.SH.pre -> acc
              | (x : SH.node) :: rest ->
                  let same =
                    x.SH.kind = "elem" && r.SH.kind = "elem"
                    && String.equal x.SH.name r.SH.name
                    && String.equal x.SH.uri r.SH.uri
                  in
                  upto (if same then acc + 1 else acc) rest
            in
            1 + upto 0 (SH.children st.shred p)
      in
      emit_text st (string_of_int count);
      None
  | C.O_message body ->
      let frag = with_fragment st (fun () -> exec_ops_with_vars st ctx body) in
      st.messages <- X.string_value frag :: st.messages;
      None
  | C.O_call { target; params; _ } ->
      let ct = st.prog.C.templates.(target) in
      let args = List.map (fun (n, v) -> (n, eval_cvalue st ctx v)) params in
      instantiate st ctx ct ctx.row args;
      None
  | C.O_apply { select; mode; sort; params; _ } ->
      let rows =
        match select with
        | None -> SH.children st.shred ctx.row
        | Some e -> (
            match eval_select st ctx e with
            | V_shred (SH.V_rows rs) -> rs
            | _ -> err "apply-templates select must be a node-set")
      in
      let rows = sort_rows st ctx sort rows in
      let args = List.map (fun (n, v) -> (n, eval_cvalue st ctx v)) params in
      let size = List.length rows in
      List.iteri
        (fun i r -> apply_one st { ctx with position = i + 1; size; mode } r args)
        rows;
      None

and eval_cvalue st ctx = function
  | C.C_select e -> eval_select st ctx e
  | C.C_tree code ->
      V_frag (with_fragment st (fun () -> exec_ops_with_vars st ctx code))

and apply_one st ctx r args =
  match find_template st ctx r ctx.mode with
  | Some id -> instantiate st ctx st.prog.C.templates.(id) r args
  | None -> builtin_rule st ctx r

and builtin_rule st ctx (r : SH.node) =
  match r.SH.kind with
  | "doc" | "elem" ->
      let kids = SH.children st.shred r in
      let size = List.length kids in
      List.iteri
        (fun i k -> apply_one st { ctx with row = r; position = i + 1; size } k [])
        kids
  | "text" | "attr" -> emit_text st r.SH.value
  | _ -> ()

and instantiate st ctx (ct : C.ctemplate) (r : SH.node) args =
  st.recursion <- st.recursion + 1;
  if st.recursion > max_recursion then err "template recursion limit exceeded";
  let vars =
    List.fold_left
      (fun vars (pname, default) ->
        let value =
          match List.assoc_opt pname args with
          | Some v -> v
          | None -> (
              match default with
              | Some dv -> eval_cvalue st { ctx with row = r; vars } dv
              | None -> V_shred (SH.V_str ""))
        in
        Smap.add pname value vars)
      ctx.vars ct.C.tparams
  in
  exec_ops_with_vars st { ctx with row = r; vars } ct.C.tcode;
  st.recursion <- st.recursion - 1

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let transform (prog : C.program) (shred : SH.t) docid : X.node =
  if prog.C.keys <> [] then fallback "xsl:key requires the DOM path";
  if prog.C.space.Ast.strip_all || prog.C.space.Ast.strip <> [] then
    fallback "active whitespace stripping requires the DOM path";
  let root = SH.doc_node shred docid in
  let st = { prog; shred; builders = []; messages = []; recursion = 0 } in
  try
    let base_ctx = { row = root; position = 1; size = 1; vars = Smap.empty; mode = None } in
    (* global variables *)
    let st0 = { st with builders = [ result_builder () ] } in
    let vars =
      List.fold_left
        (fun vars (n, v) -> Smap.add n (eval_cvalue st0 { base_ctx with vars } v) vars)
        Smap.empty prog.C.globals
    in
    let ctx = { base_ctx with vars } in
    let b = result_builder () in
    st.builders <- [ b ];
    apply_one st ctx root [];
    st.builders <- [];
    let frag = X.make X.Document in
    X.set_children frag (E.builder_result b);
    X.reindex frag;
    frag
  with SH.Unsupported m -> fallback "%s" m

let transform_to_string prog shred docid =
  let frag = transform prog shred docid in
  Xdb_xml.Serializer.node_list_to_string frag.X.children
