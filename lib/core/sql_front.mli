(** SQL/XML statement routing over the core pipeline.

    This is the half of the SQL surface that needs XMLType views, XSLT
    views and compiled transforms — [SELECT XMLTransform(…)],
    [XMLQuery(… PASSING …)], selects over XSLT views (paper Example 2
    with the combined XSLT+XQuery optimisation), and [CREATE VIEW … AS
    SELECT XMLTransform(…)].  Plain-relational statements (base-table
    SELECTs, ANALYZE, INSERT/UPDATE/DELETE) are delegated down to
    [Xdb_sql.Engine].

    The module is capability-passing: {!run} receives a {!ctx} record
    supplying view lookup, XSLT-view registration and stylesheet
    compilation, so the statement router carries no state of its own.
    {!Engine.execute} builds the ctx over its registry — compiles go
    through the plan cache and XSLT views are engine-wide, shared by
    every server session. *)

type xslt_view = {
  xv_name : string;
  xv_column : string;  (** name of the transformed output column *)
  xv_compiled : Pipeline.compiled;
}
(** An XSLT view created by [CREATE VIEW … AS SELECT XMLTransform(…)]:
    the compiled transform is kept so outer queries can compose over its
    constructor tree statically (paper Table 11). *)

type ctx = {
  db : Xdb_rel.Database.t;
  find_xml_view : string -> Xdb_rel.Publish.view option;
      (** case-insensitive lookup of a registered XMLType publishing view *)
  find_xslt_view : string -> xslt_view option;
  register_xslt_view : xslt_view -> unit;
  compile : Xdb_rel.Publish.view -> string -> Pipeline.compiled;
      (** stylesheet compilation — pass the registry's cached compile so
          repeated statements share plans *)
}

val run : ctx -> Xdb_sql.Ast.statement -> Xdb_sql.Engine.result
(** Route one parsed statement.  Select routing order: XSLT view, then
    XMLType view, then base table.
    @raise Xdb_sql.Engine.Sql_error on unknown names or unsupported
    statement shapes (wrapped into [Xdb_error.Sql] at the engine
    boundary). *)
