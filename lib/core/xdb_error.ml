(* Unified error payloads for the Engine boundary. See xdb_error.mli. *)

type t =
  | Parse of { what : string; message : string }
  | Compile of string
  | Publish of string
  | Serialize of string
  | Exec of string
  | Sql of string
  | Overloaded of string

exception Error of t

let to_string = function
  | Parse { what; message } -> Printf.sprintf "%s parse error: %s" what message
  | Compile m -> "compile error: " ^ m
  | Publish m -> "publish error: " ^ m
  | Serialize m -> "serialize error: " ^ m
  | Exec m -> "execution error: " ^ m
  | Sql m -> "SQL error: " ^ m
  | Overloaded m -> "overloaded: " ^ m

(* map each library exception to its stage; the internals keep raising
   their own exceptions — classification happens only at the facade *)
let of_exn = function
  | Xdb_xml.Parser.Parse_error { line; col; message } ->
      Some (Parse { what = "XML"; message = Printf.sprintf "line %d, col %d: %s" line col message })
  | Xdb_xslt.Parser.Stylesheet_error m -> Some (Parse { what = "XSLT"; message = m })
  | Xdb_xquery.Parser.Parse_error m -> Some (Parse { what = "XQuery"; message = m })
  | Xdb_sql.Parser.Parse_error m -> Some (Parse { what = "SQL"; message = m })
  | Xdb_sql.Engine.Sql_error m -> Some (Sql m)
  | Xdb_xpath.Parser.Parse_error m | Xdb_xpath.Lexer.Lex_error m ->
      Some (Parse { what = "XPath"; message = m })
  | Xdb_xslt.Compile.Compile_error m -> Some (Compile m)
  | Xslt2xquery.Not_translatable m -> Some (Compile ("not translatable: " ^ m))
  | Xdb_xquery.Sql_rewrite.Not_rewritable m -> Some (Compile ("not SQL-rewritable: " ^ m))
  | Registry.Registry_error m -> Some (Compile m)
  | Xdb_xquery.Typing.Typing_error m -> Some (Compile m)
  | Xdb_rel.Publish.Publish_error m -> Some (Publish m)
  | Xdb_xml.Events.Serialize_error m -> Some (Serialize m)
  | Xdb_rel.Exec.Exec_error m -> Some (Exec m)
  | Xdb_rel.Database.Unknown_table m -> Some (Exec ("unknown table " ^ m))
  | Xdb_rel.Table.Table_error m -> Some (Exec m)
  | Xdb_rel.Value.Type_error m -> Some (Exec m)
  | Xdb_xquery.Eval.Eval_error m -> Some (Exec ("XQuery evaluation: " ^ m))
  | Xdb_xquery.Value.Xquery_type_error m -> Some (Exec ("XQuery evaluation: " ^ m))
  | Xdb_xpath.Eval.Eval_error m -> Some (Exec ("XPath evaluation: " ^ m))
  | Xdb_xslt.Vm.Runtime_error m -> Some (Exec ("XSLT VM: " ^ m))
  | _ -> None

let failure_to_stage stage m =
  match stage with
  | "parse" -> Parse { what = "input"; message = m }
  | "compile" -> Compile m
  | "publish" -> Publish m
  | "serialize" -> Serialize m
  | _ -> Exec m

let wrap ~stage f =
  try f () with
  | Error _ as e -> raise e
  | Failure m -> raise (Error (failure_to_stage stage m))
  | e -> ( match of_exn e with Some t -> raise (Error t) | None -> raise e)
