(** [Xdb.Server] — the concurrent serving layer over one {!Engine}.

    The paper's setting is XSLT processing inside an RDBMS serving many
    concurrent clients; {!Engine} is a single-caller facade.  A server
    multiplexes {e sessions} — each with its own default
    {!Engine.run_options} — over one shared engine (registry, stats,
    domain pool), from any number of client threads or domains, with:

    - {b admission control}: at most [max_in_flight] requests execute at
      once; up to [max_queue] more wait; past that a request is rejected
      immediately with [Xdb_error.Error (Overloaded _)] instead of
      blocking unboundedly (so overload degrades by rejection, never by
      deadlock);
    - {b fair scheduling}: waiters are served FIFO, except that a session
      already running [per_session_cap] requests is skipped until one of
      its requests finishes — one hot session cannot starve the rest;
    - {b metrics}: per-session and server-wide accepted / rejected /
      queued / completed counts plus queue-wait and service-time
      distributions (histogram buckets and p50/p95/p99), surfaced as one
      {!Metrics} collector so they render through the existing stable
      JSON.

    Requests execute on the calling thread: admission only decides
    {e when} a caller may enter the engine, so the server adds no thread
    pool of its own and composes with [jobs > 1] domain-parallel runs
    (which serialize on the engine's pool). *)

type t
(** A server over one shared engine. *)

type session
(** One client's handle: carries its default run options and its
    fair-share accounting.  Sessions are cheap; open one per client. *)

val create :
  ?max_in_flight:int ->
  ?max_queue:int ->
  ?per_session_cap:int ->
  ?defaults:Engine.run_options ->
  Engine.t ->
  t
(** A server over [engine].  [max_in_flight] (default
    {!Parallel.default_jobs}[ ()]) bounds concurrently executing
    requests; [max_queue] (default 64) bounds waiters beyond that;
    [per_session_cap] (default [max_in_flight]) bounds one session's
    concurrently executing requests; [defaults] (default
    {!Engine.default_run_options}) seeds sessions opened without
    options.  The engine remains caller-owned: {!shutdown} drains the
    server but does not shut the engine down. *)

val engine : t -> Engine.t

val open_session : ?name:string -> ?options:Engine.run_options -> t -> session
(** A new session; [options] override the server defaults for every
    request this session issues (a per-call [?options] overrides both).
    [name] labels the session in metrics (default ["s<id>"]).
    @raise Xdb_error.Error ([Exec]) when the server has been shut down. *)

val close_session : session -> unit
(** Mark the session closed: in-flight requests finish, queued and
    future requests from it raise [Xdb_error.Error (Exec _)].
    Idempotent. *)

val session_name : session -> string

val submit : session -> (Engine.t -> 'a) -> 'a
(** [submit session f] — run [f engine] under admission control: admit
    immediately when capacity allows, otherwise wait in the FIFO queue,
    otherwise reject.  The convenience wrappers below pass the session's
    effective options to the engine; [f] receives the engine directly
    (this is also the hook tests use to hold a slot deterministically).
    Queue-wait and service time are recorded against the session and the
    server.
    @raise Xdb_error.Error ([Overloaded]) when the queue bound is
    exceeded or the server is shutting down; ([Exec]) when the session
    is closed; [f]'s own exceptions propagate (counted as failures). *)

val transform :
  ?options:Engine.run_options -> session -> view_name:string -> stylesheet:string ->
  Engine.run_result
(** {!Engine.transform} under admission control, with the session's
    effective options. *)

val publish :
  ?options:Engine.run_options -> session -> view_name:string -> Engine.run_result
(** {!Engine.publish} under admission control ([options.indent]
    pretty-prints). *)

val execute : session -> string -> Xdb_sql.Engine.result
(** {!Engine.execute} under admission control: any SQL statement,
    including DML — the engine's reader/writer lock serializes writes
    against concurrent reads, the server only decides admission. *)

val prepare : session -> view_name:string -> stylesheet:string -> Engine.stmt
(** {!Engine.prepare} under admission control (compilation shares the
    registry).  The returned statement is engine-wide: it may be pinned
    by the client and re-run across requests and sessions. *)

val transform_stmt :
  ?options:Engine.run_options -> session -> Engine.stmt -> Engine.run_result
(** {!Engine.transform_stmt} under admission control, with the session's
    effective options. *)

val explain : session -> view_name:string -> stylesheet:string -> string
(** {!Engine.explain} under admission control (compilation shares the
    registry, so it is admitted like any other request). *)

val explain_analyze :
  ?options:Engine.run_options -> session -> view_name:string -> stylesheet:string -> string
(** {!Engine.explain_analyze} under admission control. *)

(** {1 Observability} *)

(** Latency distribution summary, milliseconds (nearest-rank
    percentiles over all recorded samples). *)
type summary = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

(** One side's counters and distributions — the whole server or one
    session.  [queued] counts requests that had to wait (it is not a
    gauge); [queue_depth] and [in_flight] are instantaneous. *)
type snapshot = {
  accepted : int;  (** admitted to execute (immediately or after a wait) *)
  rejected : int;  (** refused with [Overloaded] *)
  queued : int;  (** admitted requests that waited in the queue first *)
  completed : int;  (** finished without raising *)
  failed : int;  (** finished by raising (still released their slot) *)
  in_flight : int;
  queue_depth : int;
  queue_wait : summary;  (** time from arrival to execution start *)
  service : summary;  (** time inside the engine call *)
}

val snapshot : t -> snapshot
val session_snapshot : session -> snapshot

val metrics : t -> Metrics.t
(** A fresh collector holding the server-wide counters, queue-wait and
    service-time histogram buckets ([…_le_<bound>ms] / […_gt_1000ms]),
    percentile stages, the shared engine's result-cache counters
    ([result_cache_hits]/[…_misses]/[…_invalidations]/[…_evictions]),
    and per-session [session.<name>.<counter>] counters — renderable
    with {!Metrics.to_json}. *)

val metrics_json : t -> string
(** [Metrics.to_json (metrics t)]. *)

val shutdown : t -> unit
(** Stop admitting (new and queued requests are rejected with
    [Overloaded]), wait for in-flight requests to drain, and return.
    Idempotent.  Does {e not} shut down the underlying engine. *)
