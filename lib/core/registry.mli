(** Compiled-stylesheet registry with automatic recompilation on schema
    evolution (paper §7.3): compilations are cached per (view, stylesheet)
    together with a fingerprint of the view's structural information and
    the catalog's statistics version; re-registering a view with a
    different shape — or re-ANALYZEing the database — invalidates the
    entry so plans are re-costed against fresh statistics.

    Thread safety: lookup, insert and LRU eviction are guarded by an
    internal mutex and the observability counters are atomics, so many
    domains may {!compile}/{!run} against one registry concurrently.
    Stylesheet compilation runs outside the lock; concurrent misses on
    the same key may compile twice (both counted), last insert wins. *)

type t

exception Registry_error of string

val create : ?capacity:int -> Xdb_rel.Database.t -> t
(** [capacity] bounds the number of cached compilations (default 64,
    minimum 1); the least recently used entry is evicted when exceeded. *)

val register_view : t -> Xdb_rel.Publish.view -> unit
(** (Re)register a view; replacing a view of the same name models schema
    evolution. *)

val find_view : t -> string -> Xdb_rel.Publish.view
(** The registered view of that name.
    @raise Registry_error when absent. *)

val find_view_opt : t -> string -> Xdb_rel.Publish.view option

val views : t -> (string * Xdb_rel.Publish.view) list
(** All registered views, newest first. *)

val views_version : t -> int
(** Monotonic counter bumped by every {!register_view} — prepared
    statements compare it (with the catalog's stats version) to skip
    registry work entirely while nothing changed. *)

val compile :
  ?options:Options.t ->
  ?metrics:Metrics.t ->
  t ->
  view_name:string ->
  stylesheet:string ->
  Pipeline.compiled
(** Cached compilation; recompiles when the view's structural fingerprint
    changed since the cached compile.  [metrics] records per-stage
    compile timings (incl. the optimiser's [opt_*] passes) — only when
    the call actually compiles; a cache hit records nothing.
    @raise Registry_error for unknown views. *)

val run : ?options:Options.t -> t -> view_name:string -> stylesheet:string -> string list
(** Rewrite-evaluate with auto-recompile. *)

val recompilations : t -> int
(** Number of (re)compilations performed — observability for tests. *)

val counters : t -> (string * int) list
(** Cache observability counters in stable order: [cache_hits] (fresh
    entry served), [cache_misses] (first compile), [cache_stale] (entry
    invalidated by schema evolution or re-ANALYZE), [recompilations]
    (= misses + stale), [cache_evictions] (entries dropped by LRU
    bounding). *)
