(** Pipeline metrics: named stage timings plus named counters, collected
    across one compile/run and rendered as stable JSON.

    Stages and counters keep insertion order so JSON output is
    deterministic for a given pipeline shape; timing the same stage name
    twice accumulates (e.g. per-document execution legs).

    Every update and read takes the collector's mutex, so a collector may
    be shared across domains (the Engine hands one to a parallel run and
    merges the per-domain collectors into it with {!merge_into}).  The
    mutex is uncontended in sequential use. *)

type t = {
  lock : Mutex.t;
  mutable stages : (string * float) list;  (** reversed insertion order, ms *)
  mutable counters : (string * int) list;  (** reversed insertion order *)
}

let create () = { lock = Mutex.create (); stages = []; counters = [] }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* update an assoc entry in place (preserving position) or append *)
let update_assoc l key f init =
  let rec go = function
    | [] -> None
    | (k, v) :: rest when String.equal k key -> Some ((k, f v) :: rest)
    | kv :: rest -> Option.map (fun r -> kv :: r) (go rest)
  in
  match go l with Some l' -> l' | None -> (key, f init) :: l

let add_ms t stage ms =
  locked t (fun () -> t.stages <- update_assoc t.stages stage (fun v -> v +. ms) 0.0)

(** [time t stage f] — run [f], accumulate its wall time under [stage].
    The stage is charged even when [f] raises. *)
let time t stage f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_ms t stage ((Unix.gettimeofday () -. t0) *. 1000.0)) f

let incr ?(by = 1) t name =
  locked t (fun () -> t.counters <- update_assoc t.counters name (fun v -> v + by) 0)

let set_counter t name v =
  locked t (fun () -> t.counters <- update_assoc t.counters name (fun _ -> v) 0)

let stages t = locked t (fun () -> List.rev t.stages)
let counters t = locked t (fun () -> List.rev t.counters)

let total_ms t =
  locked t (fun () -> List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 t.stages)

(** [merge_into ~into src] — fold [src]'s stages and counters into
    [into], summing on name collision and appending new names in [src]'s
    insertion order.  Domain-parallel runs give each domain its own
    collector and merge them after the join, so per-stage totals reflect
    aggregate work across domains. *)
let merge_into ~into src =
  let src_stages = stages src and src_counters = counters src in
  locked into (fun () ->
      List.iter
        (fun (name, ms) -> into.stages <- update_assoc into.stages name (fun v -> v +. ms) 0.0)
        src_stages;
      List.iter
        (fun (name, v) ->
          into.counters <- update_assoc into.counters name (fun x -> x + v) 0)
        src_counters)

(* JSON string escaping for the keys (values are numbers) *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Stable JSON: [{"stages":{…},"counters":{…}}], insertion-ordered. *)
let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf {|{"stages":{|};
  List.iteri
    (fun i (name, ms) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf {|"%s":%.4f|} (escape name) ms))
    (stages t);
  Buffer.add_string buf {|},"counters":{|};
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf {|"%s":%d|} (escape name) v))
    (counters t);
  Buffer.add_string buf "}}";
  Buffer.contents buf
