(** Pipeline metrics: named stage timings plus named counters, collected
    across one compile/run and rendered as stable JSON.

    Stages and counters keep insertion order so JSON output is
    deterministic for a given pipeline shape; timing the same stage name
    twice accumulates (e.g. per-document execution legs). *)

type t = {
  mutable stages : (string * float) list;  (** reversed insertion order, ms *)
  mutable counters : (string * int) list;  (** reversed insertion order *)
}

let create () = { stages = []; counters = [] }

(* update an assoc entry in place (preserving position) or append *)
let update_assoc l key f init =
  let rec go = function
    | [] -> None
    | (k, v) :: rest when String.equal k key -> Some ((k, f v) :: rest)
    | kv :: rest -> Option.map (fun r -> kv :: r) (go rest)
  in
  match go l with Some l' -> l' | None -> (key, f init) :: l

let add_ms t stage ms = t.stages <- update_assoc t.stages stage (fun v -> v +. ms) 0.0

(** [time t stage f] — run [f], accumulate its wall time under [stage].
    The stage is charged even when [f] raises. *)
let time t stage f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_ms t stage ((Unix.gettimeofday () -. t0) *. 1000.0)) f

let incr ?(by = 1) t name = t.counters <- update_assoc t.counters name (fun v -> v + by) 0

let set_counter t name v =
  t.counters <- update_assoc t.counters name (fun _ -> v) 0

let stages t = List.rev t.stages
let counters t = List.rev t.counters

let total_ms t = List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 t.stages

(* JSON string escaping for the keys (values are numbers) *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Stable JSON: [{"stages":{…},"counters":{…}}], insertion-ordered. *)
let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf {|{"stages":{|};
  List.iteri
    (fun i (name, ms) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf {|"%s":%.4f|} (escape name) ms))
    (stages t);
  Buffer.add_string buf {|},"counters":{|};
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf {|"%s":%d|} (escape name) v))
    (counters t);
  Buffer.add_string buf "}}";
  Buffer.contents buf
