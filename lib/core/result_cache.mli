(** Data-versioned cache of serialized transform/publish output — the
    read-path payoff of DML: on unchanged data a repeated request is a
    hash lookup plus a handful of per-table version compares, O(1) in
    the data size, instead of a plan execution.

    Each entry records the {!Xdb_rel.Database.data_version} of every
    table its plan read when the output was computed.  {!find} serves
    the entry only while all of those versions still match — a DML
    write to any dependency table bumps its version and the next lookup
    drops the entry (counted as an invalidation), forcing a recompute.
    That makes staleness impossible by construction: cached bytes and
    recomputed bytes can only differ if a dependency table was missed,
    which the rwbench byte-identity gate and the qcheck interleaving
    property both watch for.

    Entries also carry their owning view name so that re-registering a
    view (schema evolution — new spec, same table data) can invalidate
    through {!invalidate_view}, mirroring how {!Registry} fingerprints
    compiled plans.

    Like {!Registry}, the cache is LRU-bounded: each entry carries a
    last-use tick and the least recently used entry is evicted past
    [capacity] (counted in [result_cache_evictions]).

    Thread safety: one mutex guards the table and recency state, so
    concurrent server sessions share one cache safely.  Counters are
    atomics.  Version capture is only consistent because the engine
    serializes DML against reads (writer lock): within a read no
    dependency version can move between compute and {!store}. *)

type t

val create : ?capacity:int -> Xdb_rel.Database.t -> t
(** A cache over [db]'s data versions.  [capacity] (default 256) bounds
    the entry count before LRU eviction. *)

val find : t -> key:string -> string list option
(** Serve the cached output under [key] iff every dependency table's
    data version still matches the stored snapshot.  A version mismatch
    removes the entry and counts an invalidation (and a miss). *)

val store : t -> view:string -> key:string -> deps:string list -> string list -> unit
(** Store [output] under [key], snapshotting the current data version
    of every table in [deps].  [view] names the owning view for
    {!invalidate_view} ([""] for sources without one, e.g. shredded
    transforms). *)

val invalidate_view : t -> string -> unit
(** Drop every entry owned by the named view — called when the view is
    re-registered (schema evolution changes output without touching
    table data, which data versions cannot see). *)

val size : t -> int
(** Current entry count. *)

val counters : t -> (string * int) list
(** Monotonic observability counters, stable order:
    [result_cache_hits] / [result_cache_misses] /
    [result_cache_invalidations] / [result_cache_evictions]
    (invalidated lookups count as both an invalidation and a miss, so
    [hits + misses] is the total lookup count). *)
