(* Fixed-size domain pool with a chunked work queue and deterministic
   result ordering. See parallel.mli for the contract.

   Scheduling model: one batch at a time. [run] installs a batch (an
   indexed task closure plus bookkeeping), wakes the workers, and then the
   caller itself drains tasks from the same queue until none are left,
   finally waiting for stragglers on [done_cond]. Because the caller is a
   worker, [jobs = 1] spawns no domains and runs everything inline. *)

type batch = {
  task : int -> (exn * Printexc.raw_backtrace) option;
      (* Runs task [i] (outside the pool lock), storing its result in the
         caller's slot array; returns the exception, if any, for the worker
         to record under the lock. *)
  total : int;
  mutable next : int; (* next task index to hand out *)
  mutable live : int; (* tasks handed out but not yet settled *)
  mutable first_exn : (exn * Printexc.raw_backtrace) option;
}

type t = {
  lock : Mutex.t;
  work_cond : Condition.t; (* signalled when a batch arrives / shutdown *)
  done_cond : Condition.t; (* signalled when a batch fully settles *)
  mutable current : batch option;
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
  n_jobs : int;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())
let jobs pool = pool.n_jobs

(* Drain tasks from [b] until the queue is empty. Called with [pool.lock]
   held; returns with it held. *)
let drain pool b =
  while b.next < b.total do
    let i = b.next in
    b.next <- i + 1;
    b.live <- b.live + 1;
    Mutex.unlock pool.lock;
    let err = b.task i in
    Mutex.lock pool.lock;
    (match (err, b.first_exn) with
    | Some e, None -> b.first_exn <- Some e
    | _ -> ());
    b.live <- b.live - 1;
    if b.next >= b.total && b.live = 0 then Condition.broadcast pool.done_cond
  done

let worker_loop pool =
  Mutex.lock pool.lock;
  let rec loop () =
    match pool.current with
    | Some b when b.next < b.total ->
        drain pool b;
        loop ()
    | _ ->
        if pool.shutting_down then Mutex.unlock pool.lock
        else (
          Condition.wait pool.work_cond pool.lock;
          loop ())
  in
  loop ()

let create ~jobs =
  let n_jobs = max 1 jobs in
  let pool =
    {
      lock = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      current = None;
      shutting_down = false;
      workers = [];
      n_jobs;
    }
  in
  pool.workers <-
    List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let run pool f n =
  if n < 0 then invalid_arg "Parallel.run: negative task count";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let task i =
      match f i with
      | v ->
          results.(i) <- Some v;
          None
      | exception e -> Some (e, Printexc.get_raw_backtrace ())
    in
    let b = { task; total = n; next = 0; live = 0; first_exn = None } in
    Mutex.lock pool.lock;
    if pool.shutting_down then (
      Mutex.unlock pool.lock;
      invalid_arg "Parallel.run: pool has been shut down");
    if pool.current <> None then (
      Mutex.unlock pool.lock;
      invalid_arg "Parallel.run: pool is already running a batch");
    pool.current <- Some b;
    Condition.broadcast pool.work_cond;
    drain pool b;
    while b.live > 0 do
      Condition.wait pool.done_cond pool.lock
    done;
    pool.current <- None;
    Mutex.unlock pool.lock;
    (match b.first_exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every settled task stored a result *))
      results
  end

let map_list pool f xs =
  let arr = Array.of_list xs in
  Array.to_list (run pool (fun i -> f arr.(i)) (Array.length arr))

let chunk_ranges ~total ~chunks =
  if total <= 0 then []
  else
    let chunks = max 1 (min chunks total) in
    let base = total / chunks and extra = total mod chunks in
    let rec go i lo acc =
      if i >= chunks then List.rev acc
      else
        let len = base + if i < extra then 1 else 0 in
        go (i + 1) (lo + len) ((lo, lo + len) :: acc)
    in
    go 0 0 []

let shutdown pool =
  Mutex.lock pool.lock;
  let already = pool.shutting_down in
  pool.shutting_down <- true;
  Condition.broadcast pool.work_cond;
  Mutex.unlock pool.lock;
  if not already then List.iter Domain.join pool.workers

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
