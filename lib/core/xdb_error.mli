(** Unified error type raised at the {!Engine} facade boundary.

    Internals keep their own exceptions ([Publish_error],
    [Serialize_error], [Exec_error], [Failure], …) — this module {e
    wraps} them into one typed payload per pipeline stage so CLI and
    embedding callers handle a single exception ({!Error}) with a stable
    rendering ({!to_string}) instead of matching a dozen library
    exceptions or printing raw backtraces. *)

(** Which pipeline stage failed, with what the stage said. *)
type t =
  | Parse of { what : string; message : string }
      (** source-text parsing: XML documents, XSLT stylesheets, XQuery,
          XPath, SQL ([what] names the language/input) *)
  | Compile of string
      (** stylesheet → bytecode → XQuery → plan compilation, including
          registry/view resolution and translation failures *)
  | Publish of string  (** view definition or materialisation *)
  | Serialize of string  (** output event stream violations *)
  | Exec of string
      (** plan or query execution: executor, XQuery/XPath evaluation,
          XSLT VM, catalog lookups *)
  | Sql of string
      (** SQL statement validation/execution ([Xdb_sql.Engine.Sql_error]
          folded across the facade): unknown tables or columns, DML type
          mismatches, unsupported select shapes *)
  | Overloaded of string
      (** admission control rejected the request: the server's in-flight
          limit is reached and the wait queue is full (or the server is
          shutting down).  Raised by {!Server} instead of blocking
          unboundedly — a client seeing it should back off and retry *)

exception Error of t

val to_string : t -> string
(** One-line human rendering: ["<stage> error: <details>"]. *)

val of_exn : exn -> t option
(** Classify a library exception into a payload; [None] for exceptions
    this module does not own (e.g. [Out_of_memory], [Stack_overflow] —
    those propagate unwrapped). *)

val wrap : stage:string -> (unit -> 'a) -> 'a
(** [wrap ~stage f] runs [f], re-raising any classified library exception
    as {!Error}.  Unclassified exceptions propagate unchanged; [Failure]
    is attributed to [stage] ([stage] is one of ["parse"], ["compile"],
    ["publish"], ["serialize"], ["exec"]). *)
