(** Rewrite option toggles.

    Each flag corresponds to one of the paper's §3.3–3.7 techniques, so the
    ablation bench can measure the contribution of each ("although each one
    of the rewrite techniques alone is quite simple, their combined
    optimisation effect is drastic"). *)

type t = {
  inline_templates : bool;  (** §3.3 template instantiation inlining *)
  use_model_groups : bool;  (** §3.4 children instantiation by model group *)
  use_cardinality : bool;  (** §3.4 LET vs FOR from cardinality *)
  remove_backward_tests : bool;  (** §3.5 parent-axis test elimination *)
  builtin_compaction : bool;  (** §3.6 built-in-template-only compaction *)
  remove_dead_templates : bool;  (** §3.7 non-instantiated template removal *)
  partial_inline : bool;
      (** §4.4/§7.2 future-work extension: inline the acyclic portion of a
          recursive stylesheet and generate functions only for the
          templates on cycles.  Off by default — the paper's
          configuration has only the two modes. *)
}

(** Everything on — the paper's configuration. *)
let default =
  {
    inline_templates = true;
    use_model_groups = true;
    use_cardinality = true;
    remove_backward_tests = true;
    builtin_compaction = true;
    remove_dead_templates = true;
    partial_inline = false;
  }

(** The paper's configuration plus the §7.2 partial-inline extension. *)
let with_partial_inline = { default with partial_inline = true }

(** The straightforward translation of [9]: no structural information. *)
let straightforward =
  {
    inline_templates = false;
    use_model_groups = false;
    use_cardinality = false;
    remove_backward_tests = false;
    builtin_compaction = false;
    remove_dead_templates = false;
    partial_inline = false;
  }

let to_string o =
  let f n b = Printf.sprintf "%s=%b" n b in
  String.concat " "
    [
      f "inline" o.inline_templates;
      f "model-groups" o.use_model_groups;
      f "cardinality" o.use_cardinality;
      f "no-backward" o.remove_backward_tests;
      f "builtin-compaction" o.builtin_compaction;
      f "dead-removal" o.remove_dead_templates;
      f "partial-inline" o.partial_inline;
    ]

(** Stable JSON object of the toggles, paper-section order. *)
let to_json o =
  let f n b = Printf.sprintf {|"%s":%b|} n b in
  "{"
  ^ String.concat ","
      [
        f "inline_templates" o.inline_templates;
        f "use_model_groups" o.use_model_groups;
        f "use_cardinality" o.use_cardinality;
        f "remove_backward_tests" o.remove_backward_tests;
        f "builtin_compaction" o.builtin_compaction;
        f "remove_dead_templates" o.remove_dead_templates;
        f "partial_inline" o.partial_inline;
      ]
  ^ "}"
