(** The shredded XSLTVM: {!Xdb_xslt.Vm} semantics executed over relational
    node rows ({!Xdb_rel.Shred}).  Template matching runs through
    {!Xdb_rel.Shred.pattern_matches} and select/test expressions through
    {!Xdb_rel.Shred.eval_expr} — set-at-a-time scans over the node table —
    so the input document is never rebuilt; only subtrees a template
    actually copies are materialised ({!Xdb_rel.Shred.subtree}).

    Output is byte-identical to {!Xdb_xslt.Vm.transform} over the
    reconstructed document.  Anything the relational engine cannot express
    raises {!Fallback}; the caller reconstructs and runs the DOM VM. *)

exception Fallback of string
(** The stylesheet (or one of its dynamic evaluations) left the
    relationally-executable subset: [xsl:key], active whitespace
    stripping, expressions over result-tree-fragment variables, or any
    {!Xdb_rel.Shred.Unsupported} construct. *)

val transform : Xdb_xslt.Compile.program -> Xdb_rel.Shred.t -> int -> Xdb_xml.Types.node
(** [transform prog shred docid] — result fragment (a document node).
    @raise Fallback when the program leaves the relational subset;
    @raise Xdb_xslt.Vm.Runtime_error on XSLT dynamic errors (same
    conditions as the DOM VM). *)

val transform_to_string : Xdb_xslt.Compile.program -> Xdb_rel.Shred.t -> int -> string
(** {!transform} serialized — the form {!Pipeline.run_shredded} emits. *)
