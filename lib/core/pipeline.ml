(** End-to-end XSLT processing pipelines (paper Figure 1).

    Three evaluation strategies over an XMLType view:

    - {b Functional} ("XSLT no rewrite"): materialise each view document
      from the relational tables, then run the XSLTVM over the DOM — the
      paper's baseline;
    - {b XQuery stage}: run the XSLT→XQuery translation result dynamically
      over the materialised documents (used for differential testing of the
      translation itself);
    - {b Rewrite} ("XSLT rewrite"): XSLT→XQuery→SQL/XML; execute the
      relational plan with index access, never materialising the input.
      When the generated XQuery leaves the SQL-rewritable fragment the
      pipeline records the reason and falls back to the XQuery stage.

    [transform_document] covers the no-database case (standalone document +
    schema), and [compose] implements Example 2's combined optimisation. *)

let log_src = Logs.Src.create "xdb.pipeline" ~doc:"XSLT rewrite pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

module X = Xdb_xml.Types
module S = Xdb_schema.Types
module Q = Xdb_xquery.Ast
module A = Xdb_rel.Algebra
module P = Xdb_rel.Publish
module V = Xdb_rel.Value

type compiled = {
  stylesheet : Xdb_xslt.Ast.stylesheet;
  vm_prog : Xdb_xslt.Compile.program;
  view : P.view;
  schema : S.t;
  translation : Xslt2xquery.result;
  sql_plan : A.plan option;
  sql_fallback_reason : string option;
}

(* time a compile stage when a metrics collector is present *)
let staged metrics name f =
  match metrics with None -> f () | Some m -> Metrics.time m name f

(** [compile ?options ?metrics db view stylesheet_text] — full compilation:
    stylesheet → bytecode → (partial evaluation over the view's structural
    info) → XQuery → SQL/XML plan.  With [metrics], each stage's wall time
    is recorded under [parse]/[bytecode]/[schema]/[translate]/[sql_rewrite]. *)
let compile ?(options = Options.default) ?metrics db (view : P.view) stylesheet_text : compiled =
  let stylesheet = staged metrics "parse" (fun () -> Xdb_xslt.Parser.parse stylesheet_text) in
  let vm_prog = staged metrics "bytecode" (fun () -> Xdb_xslt.Compile.compile stylesheet) in
  Log.debug (fun m ->
      m "compiled stylesheet for view %s: %d templates, %d bytecode ops" view.P.view_name
        (Array.length vm_prog.Xdb_xslt.Compile.templates)
        (Xdb_xslt.Compile.program_size vm_prog));
  let schema = staged metrics "schema" (fun () -> P.to_schema view) in
  let translation =
    staged metrics "translate" (fun () -> Xslt2xquery.translate ~options vm_prog ~schema)
  in
  Log.info (fun m ->
      m "XSLT→XQuery translation: %s mode, %d user functions"
        (match translation.Xslt2xquery.mode with
        | Xslt2xquery.Mode_inline -> "inline"
        | Xslt2xquery.Mode_partial_inline -> "partial-inline"
        | Xslt2xquery.Mode_functions -> "non-inline"
        | Xslt2xquery.Mode_builtin_compact -> "builtin-compact")
        (List.length translation.Xslt2xquery.query.Q.funs));
  (* per-pass planning time: the optimiser's unnest/isolate/order/rewrite
     passes appear as their own [opt_*] stages under --metrics *)
  let opt_timer =
    Option.map (fun m -> fun name f -> Metrics.time m name f) metrics
  in
  let sql_plan, sql_fallback_reason =
    staged metrics "sql_rewrite" (fun () ->
        match
          Xdb_xquery.Sql_rewrite.rewrite_view_plan ?timer:opt_timer db view
            translation.Xslt2xquery.query
        with
        | plan ->
            Log.info (fun m -> m "XQuery→SQL/XML rewrite succeeded");
            (Some plan, None)
        | exception Xdb_xquery.Sql_rewrite.Not_rewritable reason ->
            Log.info (fun m -> m "not SQL-rewritable (%s); dynamic fallback armed" reason);
            (None, Some reason))
  in
  (match metrics with
  | Some m ->
      Metrics.incr ~by:(Xdb_xslt.Compile.program_size vm_prog) m "bytecode_ops";
      Metrics.incr ~by:(List.length translation.Xslt2xquery.query.Q.funs) m "xquery_functions";
      Metrics.incr ~by:(match sql_plan with Some _ -> 1 | None -> 0) m "sql_rewritable"
  | None -> ());
  { stylesheet; vm_prog; view; schema; translation; sql_plan; sql_fallback_reason }

(** Functional evaluation: materialise + XSLTVM (the no-rewrite baseline).
    With [metrics], materialisation and transformation times are recorded
    under [materialize]/[vm_transform]. *)
let run_functional ?metrics db (c : compiled) : string list =
  let docs = staged metrics "materialize" (fun () -> P.materialize db c.view) in
  staged metrics "vm_transform" (fun () ->
      List.map
        (fun doc ->
          let frag = Xdb_xslt.Vm.transform c.vm_prog doc in
          Xdb_xml.Serializer.node_list_to_string frag.X.children)
        docs)

(** Dynamic evaluation of the generated XQuery over materialised documents
    (whitespace stripping applied, mirroring the VM).  Each document's
    result serializes in one pass ({!Xdb_xquery.Eval.run_serialized}) —
    no copy of the result forest is built. *)
let run_xquery_stage ?metrics db (c : compiled) : string list =
  let docs = staged metrics "materialize" (fun () -> P.materialize db c.view) in
  staged metrics "xquery_eval" (fun () ->
      List.map
        (fun doc ->
          let doc = Xdb_xslt.Strip.apply c.vm_prog.Xdb_xslt.Compile.space doc in
          Xdb_xquery.Eval.run_serialized c.translation.Xslt2xquery.query ~context:doc)
        docs)

(* the rewrite plans project a single "result" column; resolve its slot
   once against the plan's layout instead of List.assoc per row.  Streamed
   XMLType results drain into one reused buffer per document — the "no
   intermediate tree" half of the Figure 3 argument, applied to output. *)
let result_column (layout, rows) =
  match Xdb_rel.Layout.slot_opt layout "result" with
  | Some s ->
      let buf = Buffer.create 1024 in
      List.map
        (fun (r : V.t array) ->
          match r.(s) with
          | V.Xml_stream produce ->
              Buffer.clear buf;
              let sink = Xdb_xml.Events.serializing_sink buf in
              produce sink;
              sink.Xdb_xml.Events.finish ();
              Buffer.contents buf
          | v -> V.to_string v)
        rows
  | None ->
      raise
        (Xdb_rel.Exec.Exec_error
           (Printf.sprintf "plan produced no result column (available columns: %s)"
              (Xdb_rel.Layout.describe layout)))

(** Rewrite evaluation: the SQL/XML plan when available, XQuery stage
    otherwise.  With [metrics], plan execution time is recorded under
    [sql_exec] (or the fallback's stages).  [streaming] (default true)
    routes the plan's XML constructors through the event stream — output
    is byte-identical to the DOM path, with no per-row result tree. *)
let run_rewrite ?metrics ?(streaming = true) db (c : compiled) : string list =
  match c.sql_plan with
  | Some plan ->
      staged metrics "sql_exec" (fun () ->
          result_column (Xdb_rel.Exec.run_arrays db ~xml_streaming:streaming plan))
  | None -> run_xquery_stage ?metrics db c

(** Rewrite evaluation with per-operator instrumentation: returns the
    results and the operator stats when a SQL/XML plan exists. *)
let run_rewrite_analyzed ?metrics ?(streaming = true) db (c : compiled) :
    string list * Xdb_rel.Stats.t option =
  match c.sql_plan with
  | Some plan ->
      let out, stats =
        staged metrics "sql_exec" (fun () ->
            Xdb_rel.Exec.run_arrays_analyzed db ~xml_streaming:streaming plan)
      in
      (result_column out, Some stats)
  | None -> (run_xquery_stage ?metrics db c, None)

(* ------------------------------------------------------------------ *)
(* Domain-parallel evaluation                                           *)
(* ------------------------------------------------------------------ *)

(* Seq_scans of [table] anywhere in the plan tree, correlated subplans
   included.  Exec.compile windows *every* matching Seq_scan, so the
   partitioned table must be seq-scanned exactly once; index probes into
   the same table are harmless (they read whole rows by rid). *)
let rec seq_scans_of table (p : A.plan) : int =
  let in_exprs es =
    List.fold_left
      (fun acc e ->
        List.fold_left (fun acc sp -> acc + seq_scans_of table sp) acc (A.subplans_of_expr e))
      0 es
  in
  match p with
  | A.Seq_scan { table = t; _ } -> if t = table then 1 else 0
  | A.Index_scan _ | A.Values _ -> 0
  | A.Filter (c, i) -> in_exprs [ c ] + seq_scans_of table i
  | A.Project (fs, i) -> in_exprs (List.map fst fs) + seq_scans_of table i
  | A.Nested_loop { outer; inner; join_cond } ->
      (match join_cond with Some c -> in_exprs [ c ] | None -> 0)
      + seq_scans_of table outer + seq_scans_of table inner
  | A.Hash_join { outer; inner; keys; _ } ->
      in_exprs (List.concat_map (fun (ok, ik) -> [ ok; ik ]) keys)
      + seq_scans_of table outer + seq_scans_of table inner
  | A.Aggregate { group_by; aggs; input } ->
      in_exprs (List.map fst group_by)
      + List.fold_left
          (fun acc (a, _) ->
            List.fold_left (fun acc sp -> acc + seq_scans_of table sp) acc (A.subplans_of_agg a))
          0 aggs
      + seq_scans_of table input
  | A.Sort (ks, i) -> in_exprs (List.map fst ks) + seq_scans_of table i
  | A.Limit (_, i) -> seq_scans_of table i

(* Is [table]'s Seq_scan the plan's driving scan, reachable through
   operators that commute with row-range partitioning?  Project and
   Filter are per-row; a Nested_loop driven by the table on its outer
   side enumerates outer-order × inner, so partitioning the outer and
   concatenating preserves row order.  Sort/Aggregate/Limit do not
   commute (a per-partition sort or limit is not the global one). *)
let rec drives_partition table (p : A.plan) : bool =
  match p with
  | A.Seq_scan { table = t; _ } -> t = table
  | A.Filter (_, i) | A.Project (_, i) -> drives_partition table i
  (* the probe side streams in order, so partitioning it and concatenating
     preserves row order (the build side is evaluated whole per domain) *)
  | A.Nested_loop { outer; _ } | A.Hash_join { outer; _ } -> drives_partition table outer
  | A.Index_scan _ | A.Values _ | A.Aggregate _ | A.Sort _ | A.Limit _ -> false

(** [partition_table c] — the base table whose row ranges a domain-parallel
    execution may partition the SQL/XML plan over, or [None] when the plan
    shape does not admit it (no plan, the base table is not the driving
    scan, or it is seq-scanned more than once). *)
let partition_table (c : compiled) : string option =
  match c.sql_plan with
  | None -> None
  | Some plan ->
      let table = c.view.P.base_table in
      if drives_partition table plan && seq_scans_of table plan = 1 then Some table else None

(* split [total] rows into ranges for [pool]: a few chunks per domain so a
   skewed chunk cannot serialise the tail, but not so many that per-chunk
   plan opens dominate *)
let pool_ranges pool total =
  Parallel.chunk_ranges ~total ~chunks:(4 * Parallel.jobs pool)

(* run [task] over row ranges of [table] across the pool's domains, each
   with a private Metrics collector (merged after the join, so stage times
   reflect aggregate work), concatenating per-range results in order *)
let parallel_over_ranges ?metrics pool db table task : string list =
  let total = Xdb_rel.Table.size (Xdb_rel.Database.table db table) in
  let ranges = Array.of_list (pool_ranges pool total) in
  let n = Array.length ranges in
  let task_metrics =
    match metrics with
    | None -> [||]
    | Some _ -> Array.init n (fun _ -> Metrics.create ())
  in
  let results =
    Parallel.run pool
      (fun i ->
        let m = if task_metrics = [||] then None else Some task_metrics.(i) in
        let lo, hi = ranges.(i) in
        task ?metrics:m ~lo ~hi ())
      n
  in
  (match metrics with
  | Some m -> Array.iter (fun tm -> Metrics.merge_into ~into:m tm) task_metrics
  | None -> ());
  List.concat (Array.to_list results)

(** Domain-parallel {!run_functional}: partitions the base-table rows
    across the pool, each domain materialising and transforming its own
    row range (private sinks and collectors), results concatenated in
    table order — byte-identical to the sequential path.  With
    [Parallel.jobs pool = 1] this is plain sequential execution. *)
let run_functional_parallel ?metrics ~pool db (c : compiled) : string list =
  if Parallel.jobs pool <= 1 then run_functional ?metrics db c
  else
    parallel_over_ranges ?metrics pool db c.view.P.base_table
      (fun ?metrics ~lo ~hi () ->
        let docs =
          staged metrics "materialize" (fun () ->
              P.materialize db ~row_range:(lo, hi) c.view)
        in
        staged metrics "vm_transform" (fun () ->
            List.map
              (fun doc ->
                let frag = Xdb_xslt.Vm.transform c.vm_prog doc in
                Xdb_xml.Serializer.node_list_to_string frag.X.children)
              docs))

(** Domain-parallel {!run_rewrite}: partitions the driving Seq_scan of the
    SQL/XML plan by row-id ranges ({!Exec.compile}'s [partition]), one
    compiled execution per range, each with its own streaming sink;
    per-range results concatenate in row order, so output is
    byte-identical to sequential.  Falls back to the sequential path when
    the plan is not partitionable ({!partition_table}) or the pool has one
    domain. *)
let run_rewrite_parallel ?metrics ?(streaming = true) ~pool db (c : compiled) : string list =
  match (c.sql_plan, partition_table c) with
  | Some plan, Some table when Parallel.jobs pool > 1 ->
      parallel_over_ranges ?metrics pool db table (fun ?metrics ~lo ~hi () ->
          staged metrics "sql_exec" (fun () ->
              result_column
                (Xdb_rel.Exec.run_arrays db ~xml_streaming:streaming
                   ~partition:(table, lo, hi) plan)))
  | _ -> run_rewrite ?metrics ~streaming db c

(** {!run_rewrite_parallel} with per-operator instrumentation: each domain
    fills a private {!Xdb_rel.Stats.t}; the collectors are summed by
    operator id after the join ({!Xdb_rel.Stats.merge_into}), so actual
    row counts match a sequential analyzed run. *)
let run_rewrite_parallel_analyzed ?metrics ?(streaming = true) ~pool db (c : compiled) :
    string list * Xdb_rel.Stats.t option =
  match (c.sql_plan, partition_table c) with
  | Some plan, Some table when Parallel.jobs pool > 1 ->
      let merged = Xdb_rel.Stats.create plan in
      let lock = Mutex.create () in
      let out =
        parallel_over_ranges ?metrics pool db table (fun ?metrics ~lo ~hi () ->
            let (res, stats) =
              staged metrics "sql_exec" (fun () ->
                  Xdb_rel.Exec.run_arrays_analyzed db ~xml_streaming:streaming
                    ~partition:(table, lo, hi) plan)
            in
            let strings = result_column res in
            Mutex.lock lock;
            Xdb_rel.Stats.merge_into ~into:merged stats;
            Mutex.unlock lock;
            strings)
      in
      (out, Some merged)
  | _ -> run_rewrite_analyzed ?metrics ~streaming db c

(** Example 2: compose an XQuery child path over the XSLT view result and
    rewrite the composition down to one relational plan (paper Table 11). *)
let compose db (c : compiled) (steps : Xdb_xpath.Ast.step list) :
    A.plan option * Q.prog =
  let composed = Xdb_xquery.Compose.navigate c.translation.Xslt2xquery.query steps in
  match Xdb_xquery.Sql_rewrite.rewrite_view_plan db c.view composed with
  | plan -> (Some plan, composed)
  | exception Xdb_xquery.Sql_rewrite.Not_rewritable _ -> (None, composed)

(** Evaluate a composed query dynamically (fallback / differential check). *)
let run_composed_dynamic db (c : compiled) (composed : Q.prog) : string list =
  let docs = P.materialize db c.view in
  List.map
    (fun doc ->
      Xdb_xml.Serializer.node_list_to_string (Xdb_xquery.Eval.run_to_nodes composed ~context:doc))
    docs

(* ------------------------------------------------------------------ *)
(* Standalone documents (no database)                                   *)
(* ------------------------------------------------------------------ *)

type doc_compiled = {
  d_prog : Xdb_xslt.Compile.program;
  d_schema : S.t;
  d_translation : Xslt2xquery.result;
}

(** [compile_for_document ?options ?schema stylesheet_text ~example_doc] —
    partial evaluation against a registered schema, or against structural
    information inferred from a representative document. *)
let compile_for_document ?(options = Options.default) ?schema stylesheet_text ~example_doc :
    doc_compiled =
  let stylesheet = Xdb_xslt.Parser.parse stylesheet_text in
  let d_prog = Xdb_xslt.Compile.compile stylesheet in
  let d_schema =
    match schema with Some s -> s | None -> Xdb_schema.Infer.infer [ example_doc ]
  in
  let d_translation = Xslt2xquery.translate ~options d_prog ~schema:d_schema in
  { d_prog; d_schema; d_translation }

(** Functional transformation of one document. *)
let transform_functional (dc : doc_compiled) doc =
  let frag = Xdb_xslt.Vm.transform dc.d_prog doc in
  Xdb_xml.Serializer.node_list_to_string frag.X.children

(** Transformation through the generated XQuery (whitespace stripping
    applied, mirroring the VM); serializes in one pass. *)
let transform_via_xquery (dc : doc_compiled) doc =
  let doc = Xdb_xslt.Strip.apply dc.d_prog.Xdb_xslt.Compile.space doc in
  Xdb_xquery.Eval.run_serialized dc.d_translation.Xslt2xquery.query ~context:doc

(** Shredded evaluation: run the shredded XSLTVM ({!Shred_vm}) per stored
    document — template matching and select iteration execute as
    set-at-a-time scans over the node table, the input document is never
    rebuilt.  A document whose stylesheet evaluation leaves the
    relational subset ({!Shred_vm.Fallback}) is reconstructed and run
    through the DOM VM instead, so output is always byte-identical to
    {!transform_functional} over the original documents.

    The shred handle's caches are not domain-safe, so the relational
    path is sequential; a multi-domain [pool] selects the legacy
    reconstruct-then-VM strategy, domain-parallel across documents.

    Stages: [shred_vm] (plus [reconstruct]/[vm_transform] for fallback
    documents).  Counters: [shred_vm_docs], [shred_vm_fallback_docs],
    and the shred handle's strategy deltas [shred_batch_steps] /
    [shred_rel_steps] / [shred_dom_fallbacks]. *)
let run_shredded ?metrics ?pool (shred : Xdb_rel.Shred.t)
    (prog : Xdb_xslt.Compile.program) docids : string list =
  let transform_dom docid =
    let doc =
      staged metrics "reconstruct" (fun () -> Xdb_rel.Shred.reconstruct shred docid)
    in
    staged metrics "vm_transform" (fun () ->
        let frag = Xdb_xslt.Vm.transform prog doc in
        Xdb_xml.Serializer.node_list_to_string frag.X.children)
  in
  let c0 = Xdb_rel.Shred.counters shred in
  let out =
    match pool with
    | Some pool when Parallel.jobs pool > 1 && List.length docids > 1 ->
        (* Shred.t is not domain-safe: parallel runs keep the legacy
           reconstruct-then-VM strategy (reconstruction itself stays
           sequential for the same reason) *)
        let docs =
          staged metrics "reconstruct" (fun () ->
              List.map (Xdb_rel.Shred.reconstruct shred) docids)
        in
        staged metrics "vm_transform" (fun () ->
            Parallel.map_list pool
              (fun doc ->
                let frag = Xdb_xslt.Vm.transform prog doc in
                Xdb_xml.Serializer.node_list_to_string frag.X.children)
              docs)
    | _ ->
        List.map
          (fun docid ->
            match
              staged metrics "shred_vm" (fun () ->
                  try Some (Shred_vm.transform_to_string prog shred docid)
                  with Shred_vm.Fallback reason ->
                    Log.debug (fun m ->
                        m "shredded VM fallback for doc %d: %s" docid reason);
                    None)
            with
            | Some s ->
                (match metrics with Some m -> Metrics.incr m "shred_vm_docs" | None -> ());
                s
            | None ->
                (match metrics with
                | Some m -> Metrics.incr m "shred_vm_fallback_docs"
                | None -> ());
                transform_dom docid)
          docids
  in
  (match metrics with
  | Some m ->
      let c1 = Xdb_rel.Shred.counters shred in
      Metrics.incr ~by:(c1.Xdb_rel.Shred.batch_steps - c0.Xdb_rel.Shred.batch_steps) m
        "shred_batch_steps";
      Metrics.incr ~by:(c1.Xdb_rel.Shred.rel_steps - c0.Xdb_rel.Shred.rel_steps) m
        "shred_rel_steps";
      Metrics.incr ~by:(c1.Xdb_rel.Shred.dom_fallbacks - c0.Xdb_rel.Shred.dom_fallbacks) m
        "shred_dom_fallbacks"
  | None -> ());
  out

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)
(* ------------------------------------------------------------------ *)

let mode_name = function
  | Xslt2xquery.Mode_inline -> "inline"
  | Xslt2xquery.Mode_partial_inline -> "partial-inline"
  | Xslt2xquery.Mode_functions -> "non-inline"
  | Xslt2xquery.Mode_builtin_compact -> "builtin-compact"

(** Multi-section EXPLAIN: generated XQuery, execution graph, SQL plan. *)
let explain (c : compiled) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "-- translation mode: %s\n" (mode_name c.translation.Xslt2xquery.mode));
  (match c.translation.Xslt2xquery.graph with
  | Some g ->
      Buffer.add_string buf "-- template execution graph:\n";
      Buffer.add_string buf (Trace.to_string g)
  | None -> ());
  Buffer.add_string buf "-- generated XQuery:\n";
  Buffer.add_string buf (Xdb_xquery.Pretty.prog_syntax c.translation.Xslt2xquery.query);
  Buffer.add_string buf "\n";
  (match (c.sql_plan, c.sql_fallback_reason) with
  | Some plan, _ ->
      Buffer.add_string buf "-- SQL/XML plan:\n";
      Buffer.add_string buf (A.explain plan)
  | None, Some reason ->
      Buffer.add_string buf (Printf.sprintf "-- not SQL-rewritable: %s\n" reason)
  | None, None -> ());
  Buffer.contents buf

(** EXPLAIN ANALYZE: execute the SQL/XML plan with instrumentation and
    render estimated vs actual rows, loops, B-tree probes and wall time
    per operator.  [interpreted] runs the reference assoc-row executor
    instead of the compiled one (the per-operator actual-row counts are
    identical either way).  Reports the fallback reason when no plan
    exists. *)
let explain_analyze ?(interpreted = false) db (c : compiled) : string =
  match c.sql_plan with
  | Some plan ->
      let stats =
        if interpreted then snd (Xdb_rel.Exec.run_interpreted_analyzed db plan)
        else snd (Xdb_rel.Exec.run_arrays_analyzed db plan)
      in
      Xdb_rel.Optimizer.explain_analyze db plan stats
  | None ->
      Printf.sprintf "-- no SQL/XML plan to analyze%s\n"
        (match c.sql_fallback_reason with
        | Some r -> " (not SQL-rewritable: " ^ r ^ ")"
        | None -> "")
