(* Data-versioned transform/publish result cache.  See result_cache.mli. *)

type entry = {
  view : string;  (** owning view name — schema-evolution invalidation handle *)
  output : string list;
  deps : (string * int) list;  (** (table, data version when stored) *)
  mutable last_used : int;  (** recency tick for LRU eviction *)
}

type t = {
  db : Xdb_rel.Database.t;
  lock : Mutex.t;  (** guards [cache], [tick] and entry recency *)
  cache : (string, entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  invalidations : int Atomic.t;
  evictions : int Atomic.t;
}

let default_capacity = 256

let create ?(capacity = default_capacity) db =
  {
    db;
    lock = Mutex.create ();
    cache = Hashtbl.create 32;
    capacity = max 1 capacity;
    tick = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    invalidations = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* callers hold t.lock *)
let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_used <- t.tick

(* drop least-recently-used entries until within capacity; holds t.lock *)
let evict_over_capacity t =
  while Hashtbl.length t.cache > t.capacity do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, best) when best.last_used <= e.last_used -> acc
          | _ -> Some (key, e))
        t.cache None
    in
    match victim with
    | None -> assert false (* non-empty: length > capacity >= 1 *)
    | Some (key, _) ->
        Hashtbl.remove t.cache key;
        Atomic.incr t.evictions
  done

let fresh t entry =
  List.for_all (fun (tbl, v) -> Xdb_rel.Database.data_version t.db tbl = v) entry.deps

let find t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.cache key with
      | Some entry when fresh t entry ->
          touch t entry;
          Atomic.incr t.hits;
          Some entry.output
      | Some _ ->
          (* some dependency table was written since this was stored *)
          Hashtbl.remove t.cache key;
          Atomic.incr t.invalidations;
          Atomic.incr t.misses;
          None
      | None ->
          Atomic.incr t.misses;
          None)

let store t ~view ~key ~deps output =
  let deps =
    List.map (fun tbl -> (tbl, Xdb_rel.Database.data_version t.db tbl)) deps
  in
  locked t (fun () ->
      let entry = { view; output; deps; last_used = 0 } in
      touch t entry;
      Hashtbl.replace t.cache key entry;
      evict_over_capacity t)

let invalidate_view t name =
  locked t (fun () ->
      let victims =
        Hashtbl.fold (fun key e acc -> if e.view = name then key :: acc else acc) t.cache []
      in
      List.iter
        (fun key ->
          Hashtbl.remove t.cache key;
          Atomic.incr t.invalidations)
        victims)

let size t = locked t (fun () -> Hashtbl.length t.cache)

let counters t =
  [
    ("result_cache_hits", Atomic.get t.hits);
    ("result_cache_misses", Atomic.get t.misses);
    ("result_cache_invalidations", Atomic.get t.invalidations);
    ("result_cache_evictions", Atomic.get t.evictions);
  ]
