(** End-to-end XSLT processing pipelines (paper Figure 1). *)

(** A stylesheet compiled against an XMLType view: bytecode for the
    functional baseline, the XSLT→XQuery translation, and (when the
    generated query stays in the rewritable fragment) the SQL/XML plan. *)
type compiled = {
  stylesheet : Xdb_xslt.Ast.stylesheet;
  vm_prog : Xdb_xslt.Compile.program;
  view : Xdb_rel.Publish.view;
  schema : Xdb_schema.Types.t;
  translation : Xslt2xquery.result;
  sql_plan : Xdb_rel.Algebra.plan option;
  sql_fallback_reason : string option;  (** why [sql_plan] is [None] *)
}

val compile :
  ?options:Options.t ->
  ?metrics:Metrics.t ->
  Xdb_rel.Database.t ->
  Xdb_rel.Publish.view ->
  string ->
  compiled
(** Full compilation: stylesheet text → bytecode → partial evaluation over
    the view's structural information → XQuery → SQL/XML plan.  With
    [metrics], per-stage wall times are recorded under
    [parse]/[bytecode]/[schema]/[translate]/[sql_rewrite], plus
    [bytecode_ops]/[xquery_functions]/[sql_rewritable] counters. *)

val run_functional : ?metrics:Metrics.t -> Xdb_rel.Database.t -> compiled -> string list
(** "XSLT no rewrite": materialise each view document, run the XSLTVM.
    One serialized result per base-table row.  Stages: [materialize],
    [vm_transform].

    Prefer {!Engine.transform} with [interpreted = true]: this entry point
    is kept as the facade's engine room (and for existing tests). *)

val run_xquery_stage : ?metrics:Metrics.t -> Xdb_rel.Database.t -> compiled -> string list
(** Evaluate the generated XQuery dynamically over materialised documents
    (differential testing of the translation itself).  Stages:
    [materialize], [xquery_eval]. *)

val run_rewrite :
  ?metrics:Metrics.t -> ?streaming:bool -> Xdb_rel.Database.t -> compiled -> string list
(** "XSLT rewrite": execute the SQL/XML plan (B-tree access, no input
    materialisation); falls back to {!run_xquery_stage} when no plan
    exists.  Stage: [sql_exec] (or the fallback's stages).  [streaming]
    (default true) makes the plan's XML constructors emit output events
    drained straight into the result buffer — byte-identical to the DOM
    path ([streaming:false]) with no per-row result tree.

    Prefer {!Engine.transform}: the facade folds [metrics]/[streaming]
    (and the parallelism knob) into one [run_options] record; this entry
    point remains as its engine room. *)

val run_rewrite_analyzed :
  ?metrics:Metrics.t ->
  ?streaming:bool ->
  Xdb_rel.Database.t ->
  compiled ->
  string list * Xdb_rel.Stats.t option
(** {!run_rewrite} with per-operator instrumentation; the stats collector
    is [None] when the pipeline fell back to the XQuery stage. *)

(** {1 Domain-parallel evaluation}

    The rewrite path turns one transform call into a per-base-table-row
    relational plan (paper §3) — embarrassingly parallel.  These variants
    split the base table's row ids into contiguous ranges, run one
    execution per range across a {!Parallel} pool (each with private
    sinks and collectors), and concatenate results in range order, so
    output is byte-identical to the sequential paths. *)

val partition_table : compiled -> string option
(** The table whose rows a parallel execution may partition the SQL/XML
    plan over: the view's base table, provided it is the plan's driving
    scan (through Project/Filter/NestedLoop-outer only) and is
    seq-scanned exactly once in the whole tree (correlated subplans
    included).  [None] otherwise — parallel entry points then fall back
    to sequential execution. *)

val run_functional_parallel :
  ?metrics:Metrics.t -> pool:Parallel.t -> Xdb_rel.Database.t -> compiled -> string list
(** Domain-parallel {!run_functional}: each domain materialises and
    transforms its own base-row range.  Sequential when the pool has one
    domain. *)

val run_rewrite_parallel :
  ?metrics:Metrics.t ->
  ?streaming:bool ->
  pool:Parallel.t ->
  Xdb_rel.Database.t ->
  compiled ->
  string list
(** Domain-parallel {!run_rewrite}: partitions the plan's driving
    Seq_scan by row-id ranges ({!Xdb_rel.Exec.compile}'s [partition]).
    Falls back to the sequential path when {!partition_table} is [None]
    or the pool has one domain. *)

val run_rewrite_parallel_analyzed :
  ?metrics:Metrics.t ->
  ?streaming:bool ->
  pool:Parallel.t ->
  Xdb_rel.Database.t ->
  compiled ->
  string list * Xdb_rel.Stats.t option
(** {!run_rewrite_parallel} with per-operator instrumentation; per-domain
    collectors are summed by operator id after the join, so actual row
    counts match a sequential analyzed run. *)

val compose :
  Xdb_rel.Database.t ->
  compiled ->
  Xdb_xpath.Ast.step list ->
  Xdb_rel.Algebra.plan option * Xdb_xquery.Ast.prog
(** Example 2: compose an XQuery child path over the XSLT view result and
    rewrite the composition down to one relational plan (paper Table 11). *)

val run_composed_dynamic :
  Xdb_rel.Database.t -> compiled -> Xdb_xquery.Ast.prog -> string list
(** Evaluate a composed query dynamically (fallback / differential). *)

(** Standalone documents (no database): *)

type doc_compiled = {
  d_prog : Xdb_xslt.Compile.program;
  d_schema : Xdb_schema.Types.t;
  d_translation : Xslt2xquery.result;
}

val compile_for_document :
  ?options:Options.t ->
  ?schema:Xdb_schema.Types.t ->
  string ->
  example_doc:Xdb_xml.Types.node ->
  doc_compiled
(** Partial evaluation against a registered schema, or against structural
    information inferred from a representative document. *)

val transform_functional : doc_compiled -> Xdb_xml.Types.node -> string
val transform_via_xquery : doc_compiled -> Xdb_xml.Types.node -> string

val run_shredded :
  ?metrics:Metrics.t ->
  ?pool:Parallel.t ->
  Xdb_rel.Shred.t ->
  Xdb_xslt.Compile.program ->
  int list ->
  string list
(** Shredded evaluation: run the shredded XSLTVM ({!Shred_vm}) per stored
    document — template matching and select iteration execute as
    set-at-a-time scans over the node table; the input document is never
    rebuilt.  A document whose evaluation leaves the relational subset
    ({!Shred_vm.Fallback}) is reconstructed and run through the DOM VM,
    so output is always byte-identical to {!transform_functional} over
    the original documents.  A multi-domain [pool] selects the legacy
    reconstruct-then-VM strategy (the shred handle is not domain-safe),
    parallel across documents.

    Stages: [shred_vm] (plus [reconstruct]/[vm_transform] for fallback
    documents).  Counters: [shred_vm_docs], [shred_vm_fallback_docs],
    [shred_batch_steps], [shred_rel_steps], [shred_dom_fallbacks]. *)

val mode_name : Xslt2xquery.mode_used -> string

val explain : compiled -> string
(** Multi-section EXPLAIN: translation mode, execution graph, generated
    XQuery, SQL/XML plan (or the fallback reason). *)

val explain_analyze : ?interpreted:bool -> Xdb_rel.Database.t -> compiled -> string
(** Execute the SQL/XML plan with instrumentation and render estimated vs
    actual rows, loops, B-tree probes and wall time per operator; reports
    the fallback reason when no plan exists.  [interpreted] (default
    false) runs the reference assoc-row executor instead of the compiled
    batch executor; per-operator actual-row counts are identical. *)
