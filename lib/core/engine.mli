(** [Xdb.Engine] — the single front door for database-backed XSLT
    processing.

    Wraps the {!Pipeline} entry points, the {!Registry} plan cache and
    the {!Parallel} domain pool behind three verbs — {!create},
    {!prepare}, {!transform} — with one {!run_options} record replacing
    the [?metrics]/[?streaming]/[?interpreted] optional-label sprawl the
    lower layers accreted.  All errors cross this boundary as
    {!Xdb_error.Error}; library internals keep their own exceptions.

    One engine owns one registry and at most one domain pool (created on
    first use of [jobs > 1], resized when [jobs] changes, joined by
    {!shutdown}).

    Thread safety: one engine may be shared by concurrent callers
    (threads or domains) — the registry and metrics collectors are
    internally locked, and the domain pool is checked out under a lock
    held for the whole parallel phase, so concurrent [jobs > 1] runs
    serialize on the pool (and a run racing a [jobs] resize can never
    have its pool shut down underneath it) while [jobs = 1] runs proceed
    independently.  {!Server} builds session multiplexing and admission
    control on top of this guarantee. *)

type t

(** How a transform (or publish) runs.  [streaming] (default true) routes
    XML result construction through output events instead of per-row
    DOMs; [jobs] (default 1) is the number of domains the run may use —
    partitioned base-table execution when the plan admits it, sequential
    fallback otherwise; [collect_metrics] (default false) attaches a
    fresh {!Metrics.t} to the run, returned in {!run_result};
    [interpreted] (default false) selects the reference paths: the
    functional VM evaluation for {!transform}, the interpreted assoc-row
    executor for {!explain_analyze}. *)
type run_options = {
  streaming : bool;
  jobs : int;
  collect_metrics : bool;
  interpreted : bool;
}

val default_run_options : run_options
(** [{ streaming = true; jobs = 1; collect_metrics = false;
      interpreted = false }] *)

type run_result = {
  output : string list;  (** one serialized result per base-table row *)
  metrics : Metrics.t option;  (** present iff [collect_metrics] *)
}

val create : ?capacity:int -> ?options:Options.t -> Xdb_rel.Database.t -> t
(** An engine over a loaded database.  [capacity] bounds the compiled
    plan cache ({!Registry.create}); [options] are the translation
    options applied to every compile. *)

val database : t -> Xdb_rel.Database.t

val register_view : t -> Xdb_rel.Publish.view -> unit
(** (Re)register an XMLType view; re-registering a name models schema
    evolution and invalidates cached plans for it. *)

val prepare :
  ?metrics:Metrics.t -> t -> view_name:string -> stylesheet:string -> Pipeline.compiled
(** Cached compilation of [stylesheet] against the view's structural
    information (fingerprinted, auto-recompiled on evolution/ANALYZE).
    [metrics] records per-stage compile timings, including the
    optimiser's [opt_unnest]/[opt_isolate]/[opt_order]/[opt_rewrite]
    passes — only when the plan cache misses; a hit records nothing.
    @raise Xdb_error.Error on parse/translation/registry failures. *)

val transform :
  ?options:run_options -> t -> view_name:string -> stylesheet:string -> run_result
(** Prepare and evaluate: the SQL/XML rewrite path (with dynamic-XQuery
    fallback) by default, the functional VM path when [interpreted].
    [jobs > 1] partitions the base table across domains; output is
    byte-identical to the sequential run.
    @raise Xdb_error.Error on any pipeline failure. *)

val publish :
  ?options:run_options -> ?indent:bool -> t -> view_name:string -> run_result
(** Materialise the view's documents (one string per base row):
    streamed serialization when [streaming], DOM-then-serialize
    otherwise; [jobs > 1] partitions the base rows across domains.
    @raise Xdb_error.Error on publish/serialize failures. *)

(** {1 Shredded document storage}

    Documents stored node-per-row with interval (pre/post) numbering
    ({!Xdb_rel.Shred}): XPath axes over them become B-tree range scans
    instead of tree walks, and transforms run directly over the node
    rows through the shredded XSLTVM ({!Shred_vm}).  One engine owns at
    most one shred store, created lazily in the engine's database on
    first use. *)

val shred_store : t -> Xdb_rel.Shred.t
(** The engine's shred store (created on first call).
    @raise Xdb_error.Error when the node table cannot be created. *)

val store_shredded : t -> Xdb_xml.Types.node -> int
(** Decompose a document into interval-encoded node rows; returns its
    docid.  @raise Xdb_error.Error on capacity overflow. *)

val transform_shredded :
  ?options:run_options -> ?docids:int list -> t -> stylesheet:string -> run_result
(** Run a stylesheet over stored documents (all of them unless [docids]
    narrows the set) through the shredded XSLTVM: template matching and
    select iteration execute as set-at-a-time scans over the node rows,
    with no document reconstruction on that path.  Documents whose
    evaluation leaves the relational subset fall back per document to
    reconstruct + DOM VM ([shred_vm_fallback_docs] in metrics), so
    output is always byte-identical to transforming the original
    documents directly.  With [jobs > 1] the legacy reconstruct-then-VM
    strategy runs domain-parallel across documents instead (the shred
    store is not domain-safe).  [streaming]/[interpreted] do not apply
    to this path; [collect_metrics] records the [shred_vm] stage plus
    the [shred_batch_steps]/[shred_rel_steps]/[shred_dom_fallbacks]
    strategy counters.
    @raise Xdb_error.Error on compile or execution failures. *)

val query_shredded : t -> docid:int -> string -> string list
(** Evaluate an XPath expression over a stored document by relational
    axis range scans (DOM-interpreter fallback outside the supported
    subset — identical answers either way) and serialize each result
    node.  @raise Xdb_error.Error on parse/evaluation failures. *)

val explain : t -> view_name:string -> stylesheet:string -> string
(** {!Pipeline.explain} of the prepared compilation.
    @raise Xdb_error.Error on compile failures. *)

val explain_analyze :
  ?options:run_options -> ?metrics:Metrics.t -> t -> view_name:string -> stylesheet:string -> string
(** Execute the SQL/XML plan with per-operator instrumentation and
    render estimated vs actual ({!Pipeline.explain_analyze});
    [metrics] records compile-stage timings as in {!prepare}.
    [interpreted] selects the reference executor.  With [jobs > 1] the
    instrumented run itself is domain-parallel and the rendered stats are
    the per-domain collectors merged by operator id — actual row counts
    match a sequential run.
    @raise Xdb_error.Error on compile/execution failures. *)

val registry_counters : t -> (string * int) list
(** The plan cache's observability counters ({!Registry.counters}). *)

val shutdown : t -> unit
(** Join the engine's domain pool, if one was created.  Idempotent; the
    engine remains usable afterwards with [jobs = 1] semantics (a new
    pool is created on the next [jobs > 1] run). *)
