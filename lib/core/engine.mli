(** [Xdb.Engine] — the single front door for database-backed XSLT
    processing.

    Wraps the {!Pipeline} entry points, the {!Registry} plan cache, the
    {!Result_cache} and the {!Parallel} domain pool behind a small verb
    set — {!create}, {!prepare}, {!run}, {!execute} — with one
    {!run_options} record replacing the [?metrics]/[?streaming]/
    [?indent]/[?docids] optional-label sprawl the lower layers accreted.
    All errors cross this boundary as {!Xdb_error.Error}; library
    internals keep their own exceptions.

    One engine owns one registry, one result cache, the SQL statement
    surface (including XSLT views created by [CREATE VIEW]) and at most
    one domain pool (created on first use of [jobs > 1], resized when
    [jobs] changes, joined by {!shutdown}).

    {2 Reads, writes and the result cache}

    {!execute} accepts any SQL statement, including INSERT/UPDATE/DELETE.
    Internally the engine holds a reader/writer lock: reads
    ({!transform}, {!publish}, selects, shredded queries) share it,
    writes (DML, ANALYZE, CREATE VIEW, {!register_view},
    {!store_shredded}) are exclusive.  Every DML write bumps the target
    table's {!Xdb_rel.Database.data_version}; cached transform/publish
    results record the versions of every table their plan read and are
    served only while all of them still match — so a write is always
    visible to the next read, cached or not, and repeated reads on
    unchanged data cost a hash lookup instead of a plan execution.
    Statistics go stale on write (reported by ANALYZE-aware tooling) but
    plans stay valid: costs are merely dated until the next ANALYZE.

    Thread safety: one engine may be shared by concurrent callers
    (threads or domains) — registry, result cache and metrics are
    internally locked, the domain pool is checked out under a lock held
    for the whole parallel phase, and the reader/writer lock serializes
    DML against in-flight reads.  {!Server} builds session multiplexing
    and admission control on top of this guarantee. *)

type t

(** How a transform (or publish) runs.  [streaming] (default true) routes
    XML result construction through output events instead of per-row
    DOMs; [jobs] (default 1) is the number of domains the run may use —
    partitioned base-table execution when the plan admits it, sequential
    fallback otherwise; [collect_metrics] (default false) attaches a
    fresh {!Metrics.t} to the run, returned in {!run_result};
    [interpreted] (default false) selects the reference paths: the
    functional VM evaluation for {!transform}, the interpreted assoc-row
    executor for {!explain_analyze}; [result_cache] (default true)
    serves/stores data-versioned cached output — disable it to force
    recomputation (the rwbench byte-identity check runs both ways);
    [indent] (default false) pretty-prints {!publish} output (transforms
    ignore it: stylesheet output is never reindented). *)
type run_options = {
  streaming : bool;
  jobs : int;
  collect_metrics : bool;
  interpreted : bool;
  result_cache : bool;
  indent : bool;
}

val default_run_options : run_options
(** [{ streaming = true; jobs = 1; collect_metrics = false;
      interpreted = false; result_cache = true; indent = false }] *)

type run_result = {
  output : string list;  (** one serialized result per base-table row *)
  metrics : Metrics.t option;
      (** present iff [collect_metrics]; its [result_cache_hit] counter
          is 1 when the output was served from the result cache *)
}

(** What a transform reads: a registered XMLType view's published
    documents, or interval-shredded stored documents ([Shredded None] =
    all of them).  Collapses the former [transform]/[transform_shredded]
    + [?docids] split into one {!run} verb. *)
type source = View of string | Shredded of int list option

val create :
  ?capacity:int -> ?result_capacity:int -> ?options:Options.t -> Xdb_rel.Database.t -> t
(** An engine over a loaded database.  [capacity] bounds the compiled
    plan cache ({!Registry.create}); [result_capacity] bounds the result
    cache ({!Result_cache.create}); [options] are the translation
    options applied to every compile. *)

val database : t -> Xdb_rel.Database.t

val register_view : t -> Xdb_rel.Publish.view -> unit
(** (Re)register an XMLType view; re-registering a name models schema
    evolution and invalidates cached plans {e and} cached results for
    it.  Takes the writer side of the engine lock. *)

(** {1 Statements}

    {!execute} runs any SQL statement — base-table selects,
    [SELECT XMLTransform(…)] over views, [XMLQuery], [CREATE VIEW … AS
    SELECT XMLTransform(…)] (an XSLT view, engine-wide), ANALYZE, and
    INSERT/UPDATE/DELETE with index maintenance and data versioning. *)

val execute : t -> string -> Xdb_sql.Engine.result
(** Parse and run one SQL statement, taking the matching side of the
    engine's reader/writer lock.  @raise Xdb_error.Error ([Parse] for
    syntax, [Sql] for validation/execution failures). *)

(** {1 Prepared statements}

    A {!stmt} pins a (view, stylesheet) pair with its compiled form.
    Re-running one skips all registry work while nothing changed: the
    hot path is two integer version compares (catalog statistics,
    view registrations); only when one moved does the statement
    recompile through the {!Registry} (which still serves its cache if
    the statement's own view is unaffected). *)

type stmt

val prepare : ?metrics:Metrics.t -> t -> view_name:string -> stylesheet:string -> stmt
(** Compile [stylesheet] against the view's structural information
    (fingerprinted, auto-recompiled on evolution/ANALYZE) and pin the
    result.  [metrics] records per-stage compile timings — only when
    the plan cache misses; a hit records nothing.
    @raise Xdb_error.Error on parse/translation/registry failures. *)

val stmt_view : stmt -> string
(** The view the statement was prepared against. *)

val transform_stmt : ?options:run_options -> t -> stmt -> run_result
(** Evaluate a prepared statement: the SQL/XML rewrite path (with
    dynamic-XQuery fallback) by default, the functional VM path when
    [interpreted], served from the result cache when possible.
    [jobs > 1] partitions the base table across domains; output is
    byte-identical to the sequential run.
    @raise Xdb_error.Error on any pipeline failure. *)

val explain_stmt : t -> stmt -> string
(** {!Pipeline.explain} of the (revalidated) compilation. *)

val explain_analyze_stmt : ?options:run_options -> ?metrics:Metrics.t -> t -> stmt -> string
(** Instrumented execution of a prepared statement (see
    {!explain_analyze}). *)

(** {1 Transforms} *)

val run : ?options:run_options -> t -> source -> stylesheet:string -> run_result
(** Transform a {!source} with [stylesheet] — the unified verb.
    [View v] prepares (through the plan cache) and evaluates;
    [Shredded ids] runs the shredded XSLTVM over stored documents.
    Cached results are served when [result_cache] and the dependency
    tables' data versions still match.
    @raise Xdb_error.Error on any pipeline failure. *)

val transform :
  ?options:run_options -> t -> view_name:string -> stylesheet:string -> run_result
(** [run t (View view_name) ~stylesheet]. *)

val publish : ?options:run_options -> t -> view_name:string -> run_result
(** Materialise the view's documents (one string per base row):
    streamed serialization when [streaming], DOM-then-serialize
    otherwise; [jobs > 1] partitions the base rows across domains;
    [indent] pretty-prints.  Cached per (view, indent) like transforms.
    @raise Xdb_error.Error on publish/serialize failures. *)

(** {1 Shredded document storage}

    Documents stored node-per-row with interval (pre/post) numbering
    ({!Xdb_rel.Shred}): XPath axes over them become B-tree range scans
    instead of tree walks, and transforms run directly over the node
    rows through the shredded XSLTVM ({!Shred_vm}).  One engine owns at
    most one shred store, created lazily in the engine's database on
    first use. *)

val shred_store : t -> Xdb_rel.Shred.t
(** The engine's shred store (created on first call, taking the writer
    side).  @raise Xdb_error.Error when the node table cannot be
    created. *)

val store_shredded : t -> Xdb_xml.Types.node -> int
(** Decompose a document into interval-encoded node rows; returns its
    docid.  Takes the writer side and bumps the node tables' data
    versions, so cached shredded transforms notice the new document.
    @raise Xdb_error.Error on capacity overflow. *)

val transform_shredded :
  ?options:run_options -> ?docids:int list -> t -> stylesheet:string -> run_result
(** [run t (Shredded docids) ~stylesheet] — kept as a thin wrapper.
    Template matching and select iteration execute as set-at-a-time
    scans over the node rows, with no document reconstruction on that
    path; documents whose evaluation leaves the relational subset fall
    back per document to reconstruct + DOM VM ([shred_vm_fallback_docs]
    in metrics), so output is always byte-identical to transforming the
    original documents directly.  With [jobs > 1] the legacy
    reconstruct-then-VM strategy runs domain-parallel across documents
    instead (the shred store is not domain-safe).
    @raise Xdb_error.Error on compile or execution failures. *)

val query_shredded : t -> docid:int -> string -> string list
(** Evaluate an XPath expression over a stored document by relational
    axis range scans (DOM-interpreter fallback outside the supported
    subset — identical answers either way) and serialize each result
    node.  @raise Xdb_error.Error on parse/evaluation failures. *)

(** {1 Inspection} *)

val explain : t -> view_name:string -> stylesheet:string -> string
(** {!Pipeline.explain} of the prepared compilation.
    @raise Xdb_error.Error on compile failures. *)

val explain_analyze :
  ?options:run_options -> ?metrics:Metrics.t -> t -> view_name:string -> stylesheet:string -> string
(** Execute the SQL/XML plan with per-operator instrumentation and
    render estimated vs actual ({!Pipeline.explain_analyze});
    [metrics] records compile-stage timings as in {!prepare}.
    [interpreted] selects the reference executor.  With [jobs > 1] the
    instrumented run itself is domain-parallel and the rendered stats are
    the per-domain collectors merged by operator id — actual row counts
    match a sequential run.
    @raise Xdb_error.Error on compile/execution failures. *)

val registry_counters : t -> (string * int) list
(** The plan cache's observability counters ({!Registry.counters}). *)

val result_cache_counters : t -> (string * int) list
(** The result cache's observability counters
    ({!Result_cache.counters}). *)

val result_cache_size : t -> int
(** Current result-cache entry count. *)

val shutdown : t -> unit
(** Join the engine's domain pool, if one was created.  Idempotent; the
    engine remains usable afterwards with [jobs = 1] semantics (a new
    pool is created on the next [jobs > 1] run). *)
