(** Compiled-stylesheet registry with automatic recompilation on schema
    evolution (paper §7.3: "this recompilation process is automated because
    the XSLT query has dependency on the XML schema whose change is tracked
    by the database system").

    Compilations are cached per (view, stylesheet).  Each cache entry
    records a fingerprint of the view's structural information; when a view
    is re-registered with a different shape — schema evolution — the next
    use recompiles against the new structure instead of serving the stale
    plan.

    The cache is bounded: entries carry a last-use tick and when the
    number of entries exceeds the configured capacity the least recently
    used entry is evicted (counted in [cache_evictions]).

    Thread safety: the view list, the cache table and the LRU tick are
    guarded by one mutex, so many domains can {!compile}/{!run}
    concurrently (Engine keeps a single registry per instance).  The
    actual stylesheet compilation runs {e outside} the lock — two domains
    missing on the same key may both compile; the loser's entry is simply
    replaced, and the counters (atomics) count both recompilations, so
    [recompilations = cache_misses + cache_stale] still holds. *)

module P = Xdb_rel.Publish
module S = Xdb_schema.Types

type entry = {
  stylesheet_text : string;
  fingerprint : string;
      (** structural fingerprint + catalog stats version at compile time *)
  compiled : Pipeline.compiled;
  mutable last_used : int;  (** recency tick for LRU eviction *)
}

type t = {
  db : Xdb_rel.Database.t;
  lock : Mutex.t;  (** guards [views], [cache], [tick] and entry recency *)
  mutable views : (string * P.view) list;
  cache : (string * string, entry) Hashtbl.t;  (** (view name, stylesheet) *)
  capacity : int;  (** max cached entries before LRU eviction *)
  mutable tick : int;  (** monotonic use counter *)
  views_version : int Atomic.t;
      (** bumped by every {!register_view} — prepared statements compare
          it (with the stats version) to skip registry lookups on hot
          paths, falling back to {!compile} only when it moved *)
  recompilations : int Atomic.t;  (** observability for tests/benches *)
  cache_hits : int Atomic.t;  (** fresh cache entry served *)
  cache_misses : int Atomic.t;  (** no cache entry — first compile *)
  cache_stale : int Atomic.t;  (** entry invalidated by schema evolution *)
  cache_evictions : int Atomic.t;  (** entries dropped by LRU bounding *)
}

exception Registry_error of string

let default_capacity = 64

let create ?(capacity = default_capacity) db =
  {
    db;
    lock = Mutex.create ();
    views = [];
    cache = Hashtbl.create 8;
    capacity = max 1 capacity;
    tick = 0;
    views_version = Atomic.make 0;
    recompilations = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    cache_stale = Atomic.make 0;
    cache_evictions = Atomic.make 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* callers hold t.lock *)
let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_used <- t.tick

(* drop least-recently-used entries until within capacity; holds t.lock *)
let evict_over_capacity t =
  while Hashtbl.length t.cache > t.capacity do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, best) when best.last_used <= e.last_used -> acc
          | _ -> Some (key, e))
        t.cache None
    in
    match victim with
    | None -> assert false (* non-empty: length > capacity >= 1 *)
    | Some (key, _) ->
        Hashtbl.remove t.cache key;
        Atomic.incr t.cache_evictions
  done

(* canonical textual form of a view's structural information: declaration
   lines sorted so hash-table order does not leak into the fingerprint.
   The catalog's statistics version is appended so that a re-ANALYZE
   invalidates cached plans — they were costed against stale statistics
   (§7.3 spirit: the database tracks the dependency, the registry
   recompiles) *)
let fingerprint_of t view =
  let schema = P.to_schema view in
  let lines = String.split_on_char '\n' (S.to_string schema) in
  String.concat "\n" (List.sort compare lines)
  ^ Printf.sprintf "\nstats_version=%d" (Xdb_rel.Database.stats_version t.db)

(** [register_view t view] — (re)register; replaces any previous view with
    the same name (schema evolution). *)
let register_view t (view : P.view) =
  locked t (fun () ->
      t.views <- (view.P.view_name, view) :: List.remove_assoc view.P.view_name t.views);
  Atomic.incr t.views_version

let views_version t = Atomic.get t.views_version

let find_view_opt t name = locked t (fun () -> List.assoc_opt name t.views)

let views t = locked t (fun () -> t.views)

let find_view t name =
  match find_view_opt t name with
  | Some v -> v
  | None -> raise (Registry_error (Printf.sprintf "unknown view %S" name))

(** [compile t ~view_name ~stylesheet] — cached compilation; recompiles
    when the view's structural fingerprint has changed since the cached
    compile (or on first use).  Safe to call from several domains at
    once; compilation itself runs outside the registry lock.  [metrics]
    records per-stage compile timings — only on a cache miss, a hit
    records nothing. *)
let compile ?(options = Options.default) ?metrics t ~view_name ~stylesheet : Pipeline.compiled =
  let view = find_view t view_name in
  let fp = fingerprint_of t view in
  let key = (view_name, stylesheet) in
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.cache key with
        | Some entry when entry.fingerprint = fp ->
            touch t entry;
            Some entry.compiled
        | found ->
            (match found with
            | Some _ ->
                (* schema evolution or re-ANALYZE *)
                Atomic.incr t.cache_stale
            | None -> Atomic.incr t.cache_misses);
            None)
  in
  match cached with
  | Some compiled ->
      Atomic.incr t.cache_hits;
      compiled
  | None ->
      let compiled = Pipeline.compile ~options ?metrics t.db view stylesheet in
      locked t (fun () ->
          let entry =
            { stylesheet_text = stylesheet; fingerprint = fp; compiled; last_used = 0 }
          in
          touch t entry;
          Hashtbl.replace t.cache key entry;
          evict_over_capacity t);
      Atomic.incr t.recompilations;
      compiled

(** [run t ~view_name ~stylesheet] — rewrite-evaluate with auto-recompile. *)
let run ?options t ~view_name ~stylesheet : string list =
  let compiled = compile ?options t ~view_name ~stylesheet in
  Pipeline.run_rewrite t.db compiled

let recompilations t = Atomic.get t.recompilations

(** Cache observability counters, stable order.  [recompilations] equals
    [cache_misses + cache_stale]. *)
let counters t =
  [
    ("cache_hits", Atomic.get t.cache_hits);
    ("cache_misses", Atomic.get t.cache_misses);
    ("cache_stale", Atomic.get t.cache_stale);
    ("recompilations", Atomic.get t.recompilations);
    ("cache_evictions", Atomic.get t.cache_evictions);
  ]
