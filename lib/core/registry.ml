(** Compiled-stylesheet registry with automatic recompilation on schema
    evolution (paper §7.3: "this recompilation process is automated because
    the XSLT query has dependency on the XML schema whose change is tracked
    by the database system").

    Compilations are cached per (view, stylesheet).  Each cache entry
    records a fingerprint of the view's structural information; when a view
    is re-registered with a different shape — schema evolution — the next
    use recompiles against the new structure instead of serving the stale
    plan.

    The cache is bounded: entries carry a last-use tick and when the
    number of entries exceeds the configured capacity the least recently
    used entry is evicted (counted in [cache_evictions]). *)

module P = Xdb_rel.Publish
module S = Xdb_schema.Types

type entry = {
  stylesheet_text : string;
  fingerprint : string;
      (** structural fingerprint + catalog stats version at compile time *)
  compiled : Pipeline.compiled;
  mutable last_used : int;  (** recency tick for LRU eviction *)
}

type t = {
  db : Xdb_rel.Database.t;
  mutable views : (string * P.view) list;
  cache : (string * string, entry) Hashtbl.t;  (** (view name, stylesheet) *)
  capacity : int;  (** max cached entries before LRU eviction *)
  mutable tick : int;  (** monotonic use counter *)
  mutable recompilations : int;  (** observability for tests/benches *)
  mutable cache_hits : int;  (** fresh cache entry served *)
  mutable cache_misses : int;  (** no cache entry — first compile *)
  mutable cache_stale : int;  (** entry invalidated by schema evolution *)
  mutable cache_evictions : int;  (** entries dropped by LRU bounding *)
}

exception Registry_error of string

let default_capacity = 64

let create ?(capacity = default_capacity) db =
  {
    db;
    views = [];
    cache = Hashtbl.create 8;
    capacity = max 1 capacity;
    tick = 0;
    recompilations = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_stale = 0;
    cache_evictions = 0;
  }

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_used <- t.tick

(* drop least-recently-used entries until within capacity *)
let evict_over_capacity t =
  while Hashtbl.length t.cache > t.capacity do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, best) when best.last_used <= e.last_used -> acc
          | _ -> Some (key, e))
        t.cache None
    in
    match victim with
    | None -> assert false (* non-empty: length > capacity >= 1 *)
    | Some (key, _) ->
        Hashtbl.remove t.cache key;
        t.cache_evictions <- t.cache_evictions + 1
  done

(* canonical textual form of a view's structural information: declaration
   lines sorted so hash-table order does not leak into the fingerprint.
   The catalog's statistics version is appended so that a re-ANALYZE
   invalidates cached plans — they were costed against stale statistics
   (§7.3 spirit: the database tracks the dependency, the registry
   recompiles) *)
let fingerprint_of t view =
  let schema = P.to_schema view in
  let lines = String.split_on_char '\n' (S.to_string schema) in
  String.concat "\n" (List.sort compare lines)
  ^ Printf.sprintf "\nstats_version=%d" (Xdb_rel.Database.stats_version t.db)

(** [register_view t view] — (re)register; replaces any previous view with
    the same name (schema evolution). *)
let register_view t (view : P.view) =
  t.views <- (view.P.view_name, view) :: List.remove_assoc view.P.view_name t.views

let find_view t name =
  match List.assoc_opt name t.views with
  | Some v -> v
  | None -> raise (Registry_error (Printf.sprintf "unknown view %S" name))

(** [compile t ~view_name ~stylesheet] — cached compilation; recompiles
    when the view's structural fingerprint has changed since the cached
    compile (or on first use). *)
let compile ?(options = Options.default) t ~view_name ~stylesheet : Pipeline.compiled =
  let view = find_view t view_name in
  let fp = fingerprint_of t view in
  let key = (view_name, stylesheet) in
  match Hashtbl.find_opt t.cache key with
  | Some entry when entry.fingerprint = fp ->
      t.cache_hits <- t.cache_hits + 1;
      touch t entry;
      entry.compiled
  | found ->
      (match found with
      | Some _ -> t.cache_stale <- t.cache_stale + 1 (* schema evolution or re-ANALYZE *)
      | None -> t.cache_misses <- t.cache_misses + 1);
      let compiled = Pipeline.compile ~options t.db view stylesheet in
      let entry = { stylesheet_text = stylesheet; fingerprint = fp; compiled; last_used = 0 } in
      touch t entry;
      Hashtbl.replace t.cache key entry;
      evict_over_capacity t;
      t.recompilations <- t.recompilations + 1;
      compiled

(** [run t ~view_name ~stylesheet] — rewrite-evaluate with auto-recompile. *)
let run ?options t ~view_name ~stylesheet : string list =
  let compiled = compile ?options t ~view_name ~stylesheet in
  Pipeline.run_rewrite t.db compiled

let recompilations t = t.recompilations

(** Cache observability counters, stable order.  [recompilations] equals
    [cache_misses + cache_stale]. *)
let counters t =
  [
    ("cache_hits", t.cache_hits);
    ("cache_misses", t.cache_misses);
    ("cache_stale", t.cache_stale);
    ("recompilations", t.recompilations);
    ("cache_evictions", t.cache_evictions);
  ]
