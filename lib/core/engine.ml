(* The Xdb.Engine facade: Registry + Pipeline + Parallel behind
   create/prepare/transform with one run_options record.  All errors
   leave through Xdb_error.Error (see engine.mli). *)

module P = Xdb_rel.Publish

type run_options = {
  streaming : bool;
  jobs : int;
  collect_metrics : bool;
  interpreted : bool;
}

let default_run_options =
  { streaming = true; jobs = 1; collect_metrics = false; interpreted = false }

type run_result = { output : string list; metrics : Metrics.t option }

type t = {
  db : Xdb_rel.Database.t;
  registry : Registry.t;
  options : Options.t;
  pool_lock : Mutex.t;
      (** held for the whole of every pool use, not just creation: a
          concurrent caller asking for a different [jobs] must not shut
          the cached pool down under a run still draining it *)
  mutable pool : Parallel.t option;  (** created lazily on first jobs > 1 run *)
  shred_lock : Mutex.t;
  mutable shred : Xdb_rel.Shred.t option;  (** created lazily on first store *)
}

let create ?capacity ?(options = Options.default) db =
  {
    db;
    registry = Registry.create ?capacity db;
    options;
    pool_lock = Mutex.create ();
    pool = None;
    shred_lock = Mutex.create ();
    shred = None;
  }

let database t = t.db
let register_view t view = Registry.register_view t.registry view

(* Run [f] over the pool matching [jobs], reusing the cached one when
   its size fits; a size change joins the old pool and spawns a fresh
   one.  The lock is held for the whole of [f]: concurrent callers
   serialize their parallel phases (the pool runs one batch at a time
   anyway), and — critically — a caller asking for a different [jobs]
   cannot shut the cached pool down under a run that is still using it. *)
let use_pool t jobs f =
  Mutex.lock t.pool_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.pool_lock)
    (fun () ->
      let pool =
        match t.pool with
        | Some p when Parallel.jobs p = jobs -> p
        | existing ->
            (match existing with Some p -> Parallel.shutdown p | None -> ());
            let p = Parallel.create ~jobs in
            t.pool <- Some p;
            p
      in
      f pool)

let shutdown t =
  Mutex.lock t.pool_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.pool_lock)
    (fun () ->
      match t.pool with
      | None -> ()
      | Some p ->
          Parallel.shutdown p;
          t.pool <- None)

let prepare ?metrics t ~view_name ~stylesheet =
  Xdb_error.wrap ~stage:"compile" (fun () ->
      Registry.compile ~options:t.options ?metrics t.registry ~view_name ~stylesheet)

let metrics_of opts = if opts.collect_metrics then Some (Metrics.create ()) else None

let transform ?(options = default_run_options) t ~view_name ~stylesheet =
  let metrics = metrics_of options in
  let compiled = prepare ?metrics t ~view_name ~stylesheet in
  let output =
    Xdb_error.wrap ~stage:"exec" (fun () ->
        if options.jobs > 1 then
          use_pool t options.jobs (fun pool ->
              if options.interpreted then
                Pipeline.run_functional_parallel ?metrics ~pool t.db compiled
              else
                Pipeline.run_rewrite_parallel ?metrics ~streaming:options.streaming ~pool
                  t.db compiled)
        else if options.interpreted then Pipeline.run_functional ?metrics t.db compiled
        else Pipeline.run_rewrite ?metrics ~streaming:options.streaming t.db compiled)
  in
  { output; metrics }

let publish ?(options = default_run_options) ?(indent = false) t ~view_name =
  let metrics = metrics_of options in
  (* publishing shares the registry's view table *)
  let view =
    Xdb_error.wrap ~stage:"publish" (fun () -> Registry.find_view t.registry view_name)
  in
  let serialize_range ?metrics ~lo ~hi () =
    let staged name f = match metrics with None -> f () | Some m -> Metrics.time m name f in
    if options.streaming then
      staged "publish_stream" (fun () ->
          P.materialize_serialized t.db ~indent ~row_range:(lo, hi) view)
    else
      staged "publish_dom" (fun () ->
          List.map
            (fun d ->
              Xdb_xml.Serializer.node_list_to_string ~indent d.Xdb_xml.Types.children)
            (P.materialize t.db ~row_range:(lo, hi) view))
  in
  let output =
    Xdb_error.wrap ~stage:"serialize" (fun () ->
        let total = Xdb_rel.Table.size (Xdb_rel.Database.table t.db view.P.base_table) in
        if options.jobs > 1 then
          use_pool t options.jobs (fun pool ->
              let ranges =
                Array.of_list
                  (Parallel.chunk_ranges ~total ~chunks:(4 * Parallel.jobs pool))
              in
              let n = Array.length ranges in
              let task_metrics =
                match metrics with
                | None -> [||]
                | Some _ -> Array.init n (fun _ -> Metrics.create ())
              in
              let results =
                Parallel.run pool
                  (fun i ->
                    let m = if task_metrics = [||] then None else Some task_metrics.(i) in
                    let lo, hi = ranges.(i) in
                    serialize_range ?metrics:m ~lo ~hi ())
                  n
              in
              (match metrics with
              | Some m -> Array.iter (fun tm -> Metrics.merge_into ~into:m tm) task_metrics
              | None -> ());
              List.concat (Array.to_list results))
        else serialize_range ?metrics ~lo:0 ~hi:total ())
  in
  { output; metrics }

(* ------------------------------------------------------------------ *)
(* Shredded storage                                                    *)
(* ------------------------------------------------------------------ *)

(* one shred store per engine, its node table living in the engine's
   database next to the published views' base tables *)
let shred_store t =
  Mutex.lock t.shred_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.shred_lock)
    (fun () ->
      match t.shred with
      | Some s -> s
      | None ->
          let s = Xdb_error.wrap ~stage:"shred" (fun () -> Xdb_rel.Shred.create t.db) in
          t.shred <- Some s;
          s)

let store_shredded t doc =
  let s = shred_store t in
  Xdb_error.wrap ~stage:"shred" (fun () -> Xdb_rel.Shred.shred s doc)

let transform_shredded ?(options = default_run_options) ?docids t ~stylesheet =
  let s = shred_store t in
  let docids =
    match docids with Some ids -> ids | None -> Xdb_rel.Shred.doc_ids s
  in
  let metrics = metrics_of options in
  match docids with
  | [] -> { output = []; metrics }
  | _ :: _ ->
      (* bytecode only: the shredded VM needs no example document, so
         nothing is reconstructed at compile time *)
      let prog =
        Xdb_error.wrap ~stage:"compile" (fun () ->
            Xdb_xslt.Compile.compile (Xdb_xslt.Parser.parse stylesheet))
      in
      let output =
        Xdb_error.wrap ~stage:"exec" (fun () ->
            if options.jobs > 1 then
              use_pool t options.jobs (fun pool ->
                  Pipeline.run_shredded ?metrics ~pool s prog docids)
            else Pipeline.run_shredded ?metrics s prog docids)
      in
      { output; metrics }

let query_shredded t ~docid expr =
  let s = shred_store t in
  Xdb_error.wrap ~stage:"exec" (fun () ->
      Xdb_rel.Shred.serialize s (Xdb_rel.Shred.select s ~docid expr))

let explain t ~view_name ~stylesheet =
  Pipeline.explain (prepare t ~view_name ~stylesheet)

let explain_analyze ?(options = default_run_options) ?metrics t ~view_name ~stylesheet =
  let compiled = prepare ?metrics t ~view_name ~stylesheet in
  Xdb_error.wrap ~stage:"exec" (fun () ->
      if options.jobs > 1 && not options.interpreted then
        use_pool t options.jobs (fun pool ->
            match
              Pipeline.run_rewrite_parallel_analyzed ~streaming:options.streaming ~pool
                t.db compiled
            with
            | _, Some stats ->
                (* per-domain collectors merged by operator id: actual row
                   counts match a sequential analyzed run *)
                let plan = Option.get compiled.Pipeline.sql_plan in
                Xdb_rel.Optimizer.explain_analyze t.db plan stats
            | _, None -> Pipeline.explain_analyze ~interpreted:false t.db compiled)
      else Pipeline.explain_analyze ~interpreted:options.interpreted t.db compiled)

let registry_counters t = Registry.counters t.registry
