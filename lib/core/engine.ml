(* The Xdb.Engine facade: Registry + Result_cache + Pipeline + Parallel +
   the SQL surface behind create/prepare/run/execute with one run_options
   record.  All errors leave through Xdb_error.Error (see engine.mli). *)

module P = Xdb_rel.Publish

(* ------------------------------------------------------------------ *)
(* Reader/writer lock                                                  *)
(* ------------------------------------------------------------------ *)

(* DML serialization: reads (transform/publish/selects) share the lock,
   writes (DML/ANALYZE/CREATE VIEW/view registration/shredding) exclude
   everything.  This is what makes result-cache version capture sound:
   within a read no dependency table's data version can move between
   computing output and storing it.  No writer preference — the write
   mix this serves is a few percent, so reader starvation of writers is
   bounded in practice (rwbench measures exactly this mix). *)
module Rw = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    mutable readers : int;
    mutable writer : bool;
  }

  let create () = { m = Mutex.create (); c = Condition.create (); readers = 0; writer = false }

  let read t f =
    Mutex.lock t.m;
    while t.writer do
      Condition.wait t.c t.m
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.m;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.m;
        t.readers <- t.readers - 1;
        if t.readers = 0 then Condition.broadcast t.c;
        Mutex.unlock t.m)
      f

  let write t f =
    Mutex.lock t.m;
    while t.writer || t.readers > 0 do
      Condition.wait t.c t.m
    done;
    t.writer <- true;
    Mutex.unlock t.m;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.m;
        t.writer <- false;
        Condition.broadcast t.c;
        Mutex.unlock t.m)
      f
end

type run_options = {
  streaming : bool;
  jobs : int;
  collect_metrics : bool;
  interpreted : bool;
  result_cache : bool;
  indent : bool;
}

let default_run_options =
  {
    streaming = true;
    jobs = 1;
    collect_metrics = false;
    interpreted = false;
    result_cache = true;
    indent = false;
  }

type run_result = { output : string list; metrics : Metrics.t option }

type source = View of string | Shredded of int list option

type t = {
  db : Xdb_rel.Database.t;
  registry : Registry.t;
  rc : Result_cache.t;
  options : Options.t;
  rw : Rw.t;
  pool_lock : Mutex.t;
      (** held for the whole of every pool use, not just creation: a
          concurrent caller asking for a different [jobs] must not shut
          the cached pool down under a run still draining it *)
  mutable pool : Parallel.t option;  (** created lazily on first jobs > 1 run *)
  shred_lock : Mutex.t;  (** guards the [shred] field only — never held
          across an [rw] acquisition (lock order is rw before shred_lock) *)
  mutable shred : Xdb_rel.Shred.t option;  (** created lazily on first store *)
  sql_lock : Mutex.t;  (** guards [xslt_views] *)
  mutable xslt_views : Sql_front.xslt_view list;
}

let create ?capacity ?result_capacity ?(options = Options.default) db =
  {
    db;
    registry = Registry.create ?capacity db;
    rc = Result_cache.create ?capacity:result_capacity db;
    options;
    rw = Rw.create ();
    pool_lock = Mutex.create ();
    pool = None;
    shred_lock = Mutex.create ();
    shred = None;
    sql_lock = Mutex.create ();
    xslt_views = [];
  }

let database t = t.db

let register_view t view =
  (* exclusive: evolution must not race in-flight reads, and the view's
     cached results are invalid even though no data version moved *)
  Rw.write t.rw (fun () ->
      Registry.register_view t.registry view;
      Result_cache.invalidate_view t.rc view.P.view_name)

(* Run [f] over the pool matching [jobs], reusing the cached one when
   its size fits; a size change joins the old pool and spawns a fresh
   one.  The lock is held for the whole of [f]: concurrent callers
   serialize their parallel phases (the pool runs one batch at a time
   anyway), and — critically — a caller asking for a different [jobs]
   cannot shut the cached pool down under a run that is still using it. *)
let use_pool t jobs f =
  Mutex.lock t.pool_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.pool_lock)
    (fun () ->
      let pool =
        match t.pool with
        | Some p when Parallel.jobs p = jobs -> p
        | existing ->
            (match existing with Some p -> Parallel.shutdown p | None -> ());
            let p = Parallel.create ~jobs in
            t.pool <- Some p;
            p
      in
      f pool)

let shutdown t =
  Mutex.lock t.pool_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.pool_lock)
    (fun () ->
      match t.pool with
      | None -> ()
      | Some p ->
          Parallel.shutdown p;
          t.pool <- None)

(* ------------------------------------------------------------------ *)
(* Prepared statements                                                 *)
(* ------------------------------------------------------------------ *)

type stmt = {
  st_view : string;
  st_stylesheet : string;
  st_lock : Mutex.t;
  mutable st_compiled : Pipeline.compiled;
  mutable st_stats : int;  (** Database.stats_version at (re)compile *)
  mutable st_views : int;  (** Registry.views_version at (re)compile *)
}

let compile_view ?metrics t ~view_name ~stylesheet =
  Xdb_error.wrap ~stage:"compile" (fun () ->
      Registry.compile ~options:t.options ?metrics t.registry ~view_name ~stylesheet)

let prepare ?metrics t ~view_name ~stylesheet =
  Rw.read t.rw (fun () ->
      let compiled = compile_view ?metrics t ~view_name ~stylesheet in
      {
        st_view = view_name;
        st_stylesheet = stylesheet;
        st_lock = Mutex.create ();
        st_compiled = compiled;
        st_stats = Xdb_rel.Database.stats_version t.db;
        st_views = Registry.views_version t.registry;
      })

(* The hot path of a prepared statement: two integer compares.  Only
   when ANALYZE or a view (re)registration moved a version does the
   statement go back through the registry (which itself re-fingerprints
   and serves its cache when the statement's own view is unaffected). *)
let stmt_compiled ?metrics t stmt =
  let stats = Xdb_rel.Database.stats_version t.db in
  let views = Registry.views_version t.registry in
  Mutex.lock stmt.st_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock stmt.st_lock)
    (fun () ->
      if stmt.st_stats <> stats || stmt.st_views <> views then (
        stmt.st_compiled <-
          compile_view ?metrics t ~view_name:stmt.st_view ~stylesheet:stmt.st_stylesheet;
        stmt.st_stats <- stats;
        stmt.st_views <- views);
      stmt.st_compiled)

let stmt_view stmt = stmt.st_view

(* ------------------------------------------------------------------ *)
(* Result cache wiring                                                 *)
(* ------------------------------------------------------------------ *)

let metrics_of opts = if opts.collect_metrics then Some (Metrics.create ()) else None

let stamp_hit metrics hit =
  match metrics with
  | None -> ()
  | Some m -> Metrics.set_counter m "result_cache_hit" (if hit then 1 else 0)

(* serve from the result cache when enabled; recompute-and-store
   otherwise.  Callers hold the read lock, so the data versions that
   [store] snapshots are exactly the versions [run] computed against. *)
let serve_cached t options ~metrics ~view ~key ~deps run =
  if not options.result_cache then run ()
  else
    match Result_cache.find t.rc ~key with
    | Some output ->
        stamp_hit metrics true;
        output
    | None ->
        let output = run () in
        Result_cache.store t.rc ~view ~key ~deps output;
        stamp_hit metrics false;
        output

let dedup tables = List.sort_uniq compare tables

(* every table the transform's output depends on: the view's own tables
   (base table + any expression/aggregate references — also what the
   functional fallback materialises from) plus whatever the optimised
   SQL/XML plan scans or probes *)
let transform_deps t view_name compiled =
  let view = Registry.find_view t.registry view_name in
  let plan_tables =
    match compiled.Pipeline.sql_plan with
    | Some plan -> Xdb_rel.Algebra.tables_of plan
    | None -> []
  in
  dedup (P.view_tables view @ plan_tables)

(* ------------------------------------------------------------------ *)
(* Transform                                                           *)
(* ------------------------------------------------------------------ *)

let transform_body ~options ?metrics t compiled =
  Xdb_error.wrap ~stage:"exec" (fun () ->
      if options.jobs > 1 then
        use_pool t options.jobs (fun pool ->
            if options.interpreted then
              Pipeline.run_functional_parallel ?metrics ~pool t.db compiled
            else
              Pipeline.run_rewrite_parallel ?metrics ~streaming:options.streaming ~pool t.db
                compiled)
      else if options.interpreted then Pipeline.run_functional ?metrics t.db compiled
      else Pipeline.run_rewrite ?metrics ~streaming:options.streaming t.db compiled)

(* key ingredients: view + stylesheet text.  streaming/jobs/interpreted
   are deliberately absent — the engine's execution strategies are
   byte-identical by invariant (tested), so they may share entries. *)
let transform_key view_name stylesheet = "T\x00" ^ view_name ^ "\x00" ^ stylesheet

let transform_stmt ?(options = default_run_options) t stmt =
  let metrics = metrics_of options in
  let output =
    Rw.read t.rw (fun () ->
        let compiled = stmt_compiled ?metrics t stmt in
        serve_cached t options ~metrics ~view:stmt.st_view
          ~key:(transform_key stmt.st_view stmt.st_stylesheet)
          ~deps:(transform_deps t stmt.st_view compiled)
          (fun () -> transform_body ~options ?metrics t compiled))
  in
  { output; metrics }

(* ------------------------------------------------------------------ *)
(* Publish                                                             *)
(* ------------------------------------------------------------------ *)

let publish ?(options = default_run_options) t ~view_name =
  let metrics = metrics_of options in
  let indent = options.indent in
  let output =
    Rw.read t.rw (fun () ->
        (* publishing shares the registry's view table *)
        let view =
          Xdb_error.wrap ~stage:"publish" (fun () -> Registry.find_view t.registry view_name)
        in
        let serialize_range ?metrics ~lo ~hi () =
          let staged name f =
            match metrics with None -> f () | Some m -> Metrics.time m name f
          in
          if options.streaming then
            staged "publish_stream" (fun () ->
                P.materialize_serialized t.db ~indent ~row_range:(lo, hi) view)
          else
            staged "publish_dom" (fun () ->
                List.map
                  (fun d ->
                    Xdb_xml.Serializer.node_list_to_string ~indent d.Xdb_xml.Types.children)
                  (P.materialize t.db ~row_range:(lo, hi) view))
        in
        let run () =
          Xdb_error.wrap ~stage:"serialize" (fun () ->
              let total =
                Xdb_rel.Table.size (Xdb_rel.Database.table t.db view.P.base_table)
              in
              if options.jobs > 1 then
                use_pool t options.jobs (fun pool ->
                    let ranges =
                      Array.of_list
                        (Parallel.chunk_ranges ~total ~chunks:(4 * Parallel.jobs pool))
                    in
                    let n = Array.length ranges in
                    let task_metrics =
                      match metrics with
                      | None -> [||]
                      | Some _ -> Array.init n (fun _ -> Metrics.create ())
                    in
                    let results =
                      Parallel.run pool
                        (fun i ->
                          let m =
                            if task_metrics = [||] then None else Some task_metrics.(i)
                          in
                          let lo, hi = ranges.(i) in
                          serialize_range ?metrics:m ~lo ~hi ())
                        n
                    in
                    (match metrics with
                    | Some m ->
                        Array.iter (fun tm -> Metrics.merge_into ~into:m tm) task_metrics
                    | None -> ());
                    List.concat (Array.to_list results))
              else serialize_range ?metrics ~lo:0 ~hi:total ())
        in
        (* indent changes the bytes, so it is part of the key *)
        let key = "P\x00" ^ view_name ^ "\x00" ^ if indent then "i" else "-" in
        serve_cached t options ~metrics ~view:view_name ~key
          ~deps:(dedup (P.view_tables view)) run)
  in
  { output; metrics }

(* ------------------------------------------------------------------ *)
(* Shredded storage                                                    *)
(* ------------------------------------------------------------------ *)

(* one shred store per engine, its node table living in the engine's
   database next to the published views' base tables.  Creation takes
   the writer side: it creates tables in the shared catalog. *)
let shred_store t =
  Mutex.lock t.shred_lock;
  let existing = t.shred in
  Mutex.unlock t.shred_lock;
  match existing with
  | Some s -> s
  | None ->
      Rw.write t.rw (fun () ->
          Mutex.lock t.shred_lock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.shred_lock)
            (fun () ->
              match t.shred with
              | Some s -> s
              | None ->
                  let s =
                    Xdb_error.wrap ~stage:"shred" (fun () -> Xdb_rel.Shred.create t.db)
                  in
                  t.shred <- Some s;
                  s))

let store_shredded t doc =
  let s = shred_store t in
  Rw.write t.rw (fun () ->
      let docid = Xdb_error.wrap ~stage:"shred" (fun () -> Xdb_rel.Shred.shred s doc) in
      (* Shred writes straight through Table.insert, which does not go
         through the DML layer — version the node tables here so cached
         shredded transforms over "all documents" notice the new one *)
      List.iter (Xdb_rel.Database.bump_data_version t.db) (Xdb_rel.Shred.tables s);
      docid)

let transform_shredded_src ?(options = default_run_options) t ~docids ~stylesheet =
  let s = shred_store t in
  let metrics = metrics_of options in
  Rw.read t.rw (fun () ->
      let docids =
        match docids with Some ids -> ids | None -> Xdb_rel.Shred.doc_ids s
      in
      match docids with
      | [] -> { output = []; metrics }
      | _ :: _ ->
          (* bytecode only: the shredded VM needs no example document, so
             nothing is reconstructed at compile time *)
          let prog =
            Xdb_error.wrap ~stage:"compile" (fun () ->
                Xdb_xslt.Compile.compile (Xdb_xslt.Parser.parse stylesheet))
          in
          let run () =
            Xdb_error.wrap ~stage:"exec" (fun () ->
                if options.jobs > 1 then
                  use_pool t options.jobs (fun pool ->
                      Pipeline.run_shredded ?metrics ~pool s prog docids)
                else Pipeline.run_shredded ?metrics s prog docids)
          in
          let key =
            "S\x00"
            ^ String.concat "," (List.map string_of_int docids)
            ^ "\x00" ^ stylesheet
          in
          let output =
            serve_cached t options ~metrics ~view:"" ~key
              ~deps:(Xdb_rel.Shred.tables s) run
          in
          { output; metrics })

let query_shredded t ~docid expr =
  let s = shred_store t in
  Rw.read t.rw (fun () ->
      Xdb_error.wrap ~stage:"exec" (fun () ->
          Xdb_rel.Shred.serialize s (Xdb_rel.Shred.select s ~docid expr)))

(* ------------------------------------------------------------------ *)
(* The unified verb                                                    *)
(* ------------------------------------------------------------------ *)

let transform ?(options = default_run_options) t ~view_name ~stylesheet =
  let metrics = metrics_of options in
  let output =
    Rw.read t.rw (fun () ->
        let compiled = compile_view ?metrics t ~view_name ~stylesheet in
        serve_cached t options ~metrics ~view:view_name
          ~key:(transform_key view_name stylesheet)
          ~deps:(transform_deps t view_name compiled)
          (fun () -> transform_body ~options ?metrics t compiled))
  in
  { output; metrics }

let run ?options t source ~stylesheet =
  match source with
  | View view_name -> transform ?options t ~view_name ~stylesheet
  | Shredded docids -> transform_shredded_src ?options t ~docids ~stylesheet

let transform_shredded ?options ?docids t ~stylesheet =
  transform_shredded_src ?options t ~docids ~stylesheet

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_stmt t stmt = Pipeline.explain (Rw.read t.rw (fun () -> stmt_compiled t stmt))

let explain t ~view_name ~stylesheet = explain_stmt t (prepare t ~view_name ~stylesheet)

let explain_analyze_stmt ?(options = default_run_options) ?metrics t stmt =
  Rw.read t.rw (fun () ->
      let compiled = stmt_compiled ?metrics t stmt in
      Xdb_error.wrap ~stage:"exec" (fun () ->
          if options.jobs > 1 && not options.interpreted then
            use_pool t options.jobs (fun pool ->
                match
                  Pipeline.run_rewrite_parallel_analyzed ~streaming:options.streaming ~pool
                    t.db compiled
                with
                | _, Some stats ->
                    (* per-domain collectors merged by operator id: actual row
                       counts match a sequential analyzed run *)
                    let plan = Option.get compiled.Pipeline.sql_plan in
                    Xdb_rel.Optimizer.explain_analyze t.db plan stats
                | _, None -> Pipeline.explain_analyze ~interpreted:false t.db compiled)
          else Pipeline.explain_analyze ~interpreted:options.interpreted t.db compiled))

let explain_analyze ?options ?metrics t ~view_name ~stylesheet =
  explain_analyze_stmt ?options ?metrics t (prepare ?metrics t ~view_name ~stylesheet)

(* ------------------------------------------------------------------ *)
(* The SQL front door                                                  *)
(* ------------------------------------------------------------------ *)

let locked_sql t f =
  Mutex.lock t.sql_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sql_lock) f

let sql_ctx t : Sql_front.ctx =
  {
    Sql_front.db = t.db;
    find_xml_view =
      (fun name ->
        match Registry.find_view_opt t.registry name with
        | Some v -> Some v
        | None ->
            let lname = String.lowercase_ascii name in
            List.find_opt
              (fun (n, _) -> String.lowercase_ascii n = lname)
              (Registry.views t.registry)
            |> Option.map snd);
    find_xslt_view =
      (fun name ->
        let lname = String.lowercase_ascii name in
        locked_sql t (fun () ->
            List.find_opt
              (fun (xv : Sql_front.xslt_view) ->
                String.lowercase_ascii xv.Sql_front.xv_name = lname)
              t.xslt_views));
    register_xslt_view =
      (fun xv ->
        locked_sql t (fun () ->
            t.xslt_views <-
              xv
              :: List.filter
                   (fun (old : Sql_front.xslt_view) ->
                     String.lowercase_ascii old.Sql_front.xv_name
                     <> String.lowercase_ascii xv.Sql_front.xv_name)
                   t.xslt_views));
    compile =
      (fun view stylesheet ->
        Registry.compile ~options:t.options t.registry ~view_name:view.P.view_name
          ~stylesheet);
  }

(* after a DML write to one of the shred store's node tables, its
   reconstruction/meta caches describe rows that may no longer exist *)
let invalidate_shred_after_dml t stmt =
  match Xdb_sql.Engine.dml_target stmt with
  | None -> ()
  | Some table -> (
      Mutex.lock t.shred_lock;
      let shred = t.shred in
      Mutex.unlock t.shred_lock;
      match shred with
      | Some s when List.mem table (Xdb_rel.Shred.tables s) ->
          Xdb_rel.Shred.invalidate_caches s
      | _ -> ())

let execute t text =
  let stmt =
    Xdb_error.wrap ~stage:"parse" (fun () -> Xdb_sql.Parser.parse text)
  in
  let run_it () =
    Xdb_error.wrap ~stage:"exec" (fun () -> Sql_front.run (sql_ctx t) stmt)
  in
  match stmt with
  | Xdb_sql.Ast.Select _ -> Rw.read t.rw run_it
  | Xdb_sql.Ast.Analyze _ | Xdb_sql.Ast.Create_view _ -> Rw.write t.rw run_it
  | Xdb_sql.Ast.Insert _ | Xdb_sql.Ast.Update _ | Xdb_sql.Ast.Delete _ ->
      Rw.write t.rw (fun () ->
          let r = run_it () in
          invalidate_shred_after_dml t stmt;
          r)

let registry_counters t = Registry.counters t.registry
let result_cache_counters t = Result_cache.counters t.rc
let result_cache_size t = Result_cache.size t.rc
