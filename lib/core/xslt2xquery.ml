(** XSLT → XQuery translation (the paper's core contribution, §3–§4).

    Two generation strategies share one instruction translator:

    - {b Optimised (partial evaluation)} — uses the template execution graph
      from {!Trace} plus the structural information ({!Xdb_schema.Types.t})
      to produce an inline query (no user functions) when the graph is
      acyclic, applying the §3.3–3.7 techniques: template inlining,
      model-group/cardinality-driven children instantiation (LET vs FOR,
      conditional-test elimination), backward-axis test removal,
      built-in-only compaction, and dead-template removal.
    - {b Non-inline / straightforward} — one XQuery function per template
      with conditional dispatch at each apply site, the [9]-style
      translation used when the graph is recursive or when inlining is
      disabled for ablation.

    The generated query expects the input document as its context item
    ([declare variable $var000 := .]). *)

module X = Xdb_xml.Types
module XP = Xdb_xpath.Ast
module Pat = Xdb_xpath.Pattern
module S = Xdb_schema.Types
module Q = Xdb_xquery.Ast
module C = Xdb_xslt.Compile
module A = Xdb_xslt.Ast

exception Not_translatable of string

let fail fmt = Printf.ksprintf (fun m -> raise (Not_translatable m)) fmt

let root_var = "var000"

type gen = {
  prog : C.program;
  schema : S.t;
  options : Options.t;
  graph : Trace.t option;  (** [None] in pure straightforward mode *)
  cycles : int list;  (** template ids on static call-template cycles *)
  allow_partial : bool;  (** partial-inline mode (§7.2 extension) *)
  mutable counter : int;
  mutable needed_funs : int list;  (** template ids requiring functions *)
  mutable needs_builtin_fun : bool;
}

(* template ids reachable from themselves through call-template edges *)
let call_cycles (prog : C.program) : int list =
  let n = Array.length prog.C.templates in
  let edges = Array.make n [] in
  let rec collect_code src (code : C.code) =
    Array.iter
      (fun op ->
        match op with
        | C.O_call { target; params; _ } ->
            edges.(src) <- target :: edges.(src);
            List.iter
              (fun (_, v) -> match v with C.C_tree c -> collect_code src c | C.C_select _ -> ())
              params
        | C.O_apply { params; _ } ->
            List.iter
              (fun (_, v) -> match v with C.C_tree c -> collect_code src c | C.C_select _ -> ())
              params
        | C.O_literal_elem (_, _, c)
        | C.O_elem (_, c)
        | C.O_attr (_, c)
        | C.O_comment c
        | C.O_pi (_, c)
        | C.O_copy c
        | C.O_if (_, c)
        | C.O_message c
        | C.O_for_each (_, _, c) ->
            collect_code src c
        | C.O_choose bs -> List.iter (fun (_, c) -> collect_code src c) bs
        | C.O_var (_, C.C_tree c) -> collect_code src c
        | C.O_text _ | C.O_value_of _ | C.O_copy_of _ | C.O_number _
        | C.O_var (_, C.C_select _) ->
            ())
      code
  in
  Array.iteri (fun i ct -> collect_code i ct.C.tcode) prog.C.templates;
  let reaches_self start =
    let seen = Array.make n false in
    let rec go i =
      List.exists (fun j -> j = start || ((not seen.(j)) && (seen.(j) <- true; go j))) edges.(i)
    in
    go start
  in
  List.filter reaches_self (List.init n (fun i -> i))

let fresh g =
  g.counter <- g.counter + 1;
  Printf.sprintf "var%03d" g.counter

(* ------------------------------------------------------------------ *)
(* XPath → XQuery expression relocation                                 *)
(* ------------------------------------------------------------------ *)

(* fresh names for key() expansions (module-level: xp_to_q has no state) *)
let key_var_counter = ref 0

(* Translate an XSLT-side XPath to an XQuery expression with the context
   node held in variable [cur].  [pos_var] substitutes position();
   [keys] enables the semantic expansion of key(name, value) into a
   document search with the key's use expression as a predicate. *)
let rec xp_to_q ~cur ?pos_var ?last_var ?(keys = []) (e : XP.expr) : Q.expr =
  let recur e = xp_to_q ~cur ?pos_var ?last_var ~keys e in
  match e with
  | XP.Call ("key", [ XP.Literal kname; value ]) -> (
      match List.find_opt (fun (d : A.key_decl) -> d.A.key_name = kname) keys with
      | None -> fail "key(): no xsl:key named %S" kname
      | Some decl ->
          incr key_var_counter;
          let kv = Printf.sprintf "__key%d" !key_var_counter in
          (* one descendant search per pattern alternative, united *)
          let alt_path (alt : Xdb_xpath.Pattern.pattern_path) =
            match alt.Xdb_xpath.Pattern.rev_steps with
            | [ ({ XP.test = XP.Name_test (_, local); predicates = []; _ }, _) ] ->
                Q.Path
                  ( Q.Var root_var,
                    [
                      { XP.axis = XP.Descendant_or_self;
                        test = XP.Node_type_test XP.Any_node;
                        predicates = [] };
                      { XP.axis = XP.Child;
                        test = XP.Name_test (None, local);
                        predicates = [ XP.Binop (XP.Eq, decl.A.key_use, XP.Var kv) ] };
                    ] )
            | _ -> fail "key(): only single-step name-test match patterns are translatable"
          in
          let search =
            match List.map alt_path (decl.A.key_match).Xdb_xpath.Pattern.alternatives with
            | [] -> Q.Seq []
            | first :: rest ->
                List.fold_left (fun acc p -> Q.Binop (XP.Union, acc, p)) first rest
          in
          Q.Flwor ([ Q.Let { var = kv; value = recur value } ], search))
  | XP.Literal s -> Q.Literal (Q.Str s)
  | XP.Number f -> Q.Literal (Q.Num f)
  | XP.Var v -> Q.Var v
  | XP.Neg e -> Q.Neg (recur e)
  | XP.Binop (op, a, b) -> Q.Binop (op, recur a, recur b)
  | XP.Path { absolute = false; steps } -> (
      (* drop leading predicate-free self::node() steps ("." syntax) *)
      let steps =
        let rec strip = function
          | { XP.axis = XP.Self; test = XP.Node_type_test XP.Any_node; predicates = [] } :: rest
            ->
              strip rest
          | steps -> steps
        in
        strip steps
      in
      match steps with [] -> Q.Var cur | steps -> Q.Path (Q.Var cur, steps))
  | XP.Path { absolute = true; steps } -> Q.Path (Q.Var root_var, steps)
  | XP.Filter (base, preds, steps) ->
      let base_q = recur base in
      if preds = [] && steps = [] then base_q
      else
        let pred_step =
          if preds = [] then []
          else [ { XP.axis = XP.Self; test = XP.Node_type_test XP.Any_node; predicates = preds } ]
        in
        Q.Path (base_q, pred_step @ steps)
  | XP.Call ("position", []) -> (
      match pos_var with
      | Some pv -> Q.Var pv
      | None -> fail "position() outside an iteration cannot be translated")
  | XP.Call ("last", []) -> (
      match last_var with
      | Some lv -> Q.Var lv
      | None -> fail "last() outside an iteration cannot be translated")
  | XP.Call ("current", []) -> Q.Var cur
  | XP.Call (f, args) -> Q.Fn_call (f, List.map recur args)

(* does an expression (or nested predicate) use position() / last() at the
   top level (outside step predicates, which XPath handles itself)? *)
let rec uses_fn fname (e : XP.expr) =
  match e with
  | XP.Call (f, []) when f = fname -> true
  | XP.Call (_, args) -> List.exists (uses_fn fname) args
  | XP.Binop (_, a, b) -> uses_fn fname a || uses_fn fname b
  | XP.Neg e -> uses_fn fname e
  | XP.Literal _ | XP.Number _ | XP.Var _ | XP.Path _ | XP.Filter _ -> false

let uses_position = uses_fn "position"
let uses_last = uses_fn "last"

(* ------------------------------------------------------------------ *)
(* Pattern → XQuery dispatch condition (§3.5, Tables 16–19)             *)
(* ------------------------------------------------------------------ *)

(* element names that can be the parent of [child] according to the schema *)
let schema_parents g child =
  List.filter_map
    (fun (pname, d) ->
      if List.exists (fun p -> p.S.child = child) d.S.particles then Some pname else None)
    g.schema.S.decls

let test_condition x (test : XP.node_test) : Q.expr =
  match test with
  | XP.Name_test (_, local) -> Q.Instance_of (Q.Var x, Q.It_element (Some local))
  | XP.Star | XP.Prefix_star _ -> Q.Instance_of (Q.Var x, Q.It_element None)
  | XP.Node_type_test XP.Text_node -> Q.Instance_of (Q.Var x, Q.It_text)
  | XP.Node_type_test XP.Comment_node -> Q.Instance_of (Q.Var x, Q.It_comment)
  | XP.Node_type_test XP.Any_node -> Q.Instance_of (Q.Var x, Q.It_node)
  | XP.Node_type_test (XP.Pi_node _) -> Q.Literal (Q.Bool false)

let conj = function
  | [] -> Q.Literal (Q.Bool true)
  | c :: rest -> List.fold_left (fun acc x -> Q.Binop (XP.And, acc, x)) c rest

(** Condition under which the node in [$x] matches one pattern alternative.
    With [remove_backward_tests] the parent-axis [fn:exists] checks that the
    structural information proves redundant are dropped (Table 17 → 19). *)
let alternative_condition g x (alt : Pat.pattern_path) : Q.expr =
  match alt.Pat.rev_steps with
  | [] -> Q.Literal (Q.Bool false) (* "/" matches only the root; handled separately *)
  | (last_step, _) :: ancestors ->
      let head = test_condition x last_step.XP.test in
      let pred_checks =
        if last_step.XP.predicates = [] then []
        else
          [ Q.Fn_call
              ( "exists",
                [ Q.Path
                    ( Q.Var x,
                      [ { XP.axis = XP.Self;
                          test = XP.Node_type_test XP.Any_node;
                          predicates = last_step.XP.predicates } ] ) ] ) ]
      in
      (* parent-axis checks for the remaining steps, innermost first *)
      let child_name_of_test = function
        | XP.Name_test (_, l) -> Some l
        | _ -> None
      in
      (* each rev_steps entry carries the link joining it to the step on its
         LEFT; so the axis used to test an ancestor step comes from the link
         of the step to its right ([prev_link]) *)
      let rec backward (current_child : string option) prev_link steps acc_steps checks =
        match steps with
        | [] -> checks
        | ((step : XP.step), link) :: rest ->
            let axis =
              match (prev_link : Pat.step_link) with
              | Pat.Direct_child -> XP.Parent
              | Pat.Any_ancestor -> XP.Ancestor
            in
            let removable =
              g.options.Options.remove_backward_tests
              && step.XP.predicates = []
              && prev_link = Pat.Direct_child
              &&
              match (current_child, child_name_of_test step.XP.test) with
              | Some child, Some parent -> schema_parents g child = [ parent ]
              | _ -> false
            in
            let acc_steps' = acc_steps @ [ { step with XP.axis } ] in
            let checks' =
              if removable then checks
              else checks @ [ Q.Fn_call ("exists", [ Q.Path (Q.Var x, acc_steps') ]) ]
            in
            backward (child_name_of_test step.XP.test) link rest acc_steps' checks'
      in
      let last_link = snd (List.hd alt.Pat.rev_steps) in
      ignore last_link;
      let checks =
        match alt.Pat.rev_steps with
        | (_, first_link) :: _ ->
            backward (child_name_of_test last_step.XP.test) first_link ancestors [] []
        | [] -> []
      in
      conj ((head :: pred_checks) @ checks)

let pattern_condition g x (pat : Pat.t) : Q.expr =
  match List.map (alternative_condition g x) pat.Pat.alternatives with
  | [] -> Q.Literal (Q.Bool false)
  | [ c ] -> c
  | c :: rest -> List.fold_left (fun acc d -> Q.Binop (XP.Or, acc, d)) c rest

(* ------------------------------------------------------------------ *)
(* Instruction translation                                             *)
(* ------------------------------------------------------------------ *)

(* how apply/call sites are expanded *)
type strategy =
  | Inline of Trace.gstate  (** current graph state: targets from the trace *)
  | Functions  (** conditional dispatch on function calls *)

type tctx = {
  cur : string;  (** variable holding the context node *)
  pos_var : string option;  (** substitutes position() *)
  last_var : string option;  (** substitutes last() *)
  strategy : strategy;
}

let merge_adjacent_texts content =
  (* cosmetic: <H2>Department name: {fn:string(..)}</H2> as one concat *)
  let as_text = function
    | Q.Comp_text inner -> Some inner
    | Q.Literal (Q.Str s) -> Some (Q.Literal (Q.Str s))
    | _ -> None
  in
  let rec go acc pending = function
    | [] -> List.rev (flush acc pending)
    | e :: rest -> (
        match as_text e with
        | Some t -> go acc (t :: pending) rest
        | None -> go (e :: flush acc pending) [] rest)
  and flush acc pending =
    match List.rev pending with
    | [] -> acc
    | [ Q.Literal (Q.Str s) ] -> Q.Literal (Q.Str s) :: acc
    | [ one ] -> Q.Comp_text one :: acc
    | many -> Q.Comp_text (Q.Fn_call ("concat", many)) :: acc
  in
  go [] [] content

let rec gen_body g (t : tctx) (code : C.code) : Q.expr =
  (* sequential ops; O_var introduces a let over the remainder *)
  let rec seq i acc =
    if i >= Array.length code then List.rev acc
    else
      match code.(i) with
      | C.O_var (name, v) ->
          let value = gen_cvalue g t v in
          let rest = seq (i + 1) [] in
          List.rev (Q.Flwor ([ Q.Let { var = name; value } ], Q.Seq rest) :: acc)
      | op -> seq (i + 1) (gen_op g t op :: acc)
  in
  match merge_adjacent_texts (seq 0 []) with
  | [ e ] -> e
  | es -> Q.Seq es

and gen_xp g t e = xp_to_q ~cur:t.cur ?pos_var:t.pos_var ?last_var:t.last_var ~keys:g.prog.C.keys e

and gen_cvalue g t = function
  | C.C_select e -> gen_xp g t e
  | C.C_tree code -> gen_body g t code

and gen_avt g t (a : A.avt) : Q.attr_piece list =
  List.map
    (function
      | A.Avt_str s -> Q.Attr_str s
      | A.Avt_expr e -> Q.Attr_expr (Q.Fn_call ("string", [ gen_xp g t e ])))
    a

and gen_op g (t : tctx) (op : C.op) : Q.expr =
  let xq e = gen_xp g t e in
  match op with
  | C.O_text s -> Q.Literal (Q.Str s)
  | C.O_value_of e -> Q.Comp_text (Q.Fn_call ("string", [ xq e ]))
  | C.O_copy_of e -> xq e
  | C.O_literal_elem (name, attrs, body) ->
      Q.Direct_elem (name, List.map (fun (n, a) -> (n, gen_avt g t a)) attrs, [ gen_body g t body ])
  | C.O_elem (name_avt, body) -> (
      match gen_avt g t name_avt with
      | [ Q.Attr_str s ] -> Q.Direct_elem (s, [], [ gen_body g t body ])
      | pieces ->
          let name_expr =
            Q.Fn_call
              ( "concat",
                List.map
                  (function Q.Attr_str s -> Q.Literal (Q.Str s) | Q.Attr_expr e -> e)
                  pieces
                @ [ Q.Literal (Q.Str "") ] )
          in
          Q.Comp_elem (name_expr, gen_body g t body))
  | C.O_attr (name_avt, body) -> (
      match gen_avt g t name_avt with
      | [ Q.Attr_str s ] -> Q.Comp_attr (s, gen_body g t body)
      | _ -> fail "computed attribute names are not supported")
  | C.O_comment body -> Q.Comp_comment (Q.Fn_call ("string-join",
      [ gen_body g t body; Q.Literal (Q.Str "") ]))
  | C.O_pi _ -> fail "processing-instruction constructors are not supported in the subset"
  | C.O_copy body -> (
      match t.strategy with
      | Inline state -> (
          match state.Trace.context.X.kind with
          | X.Element q -> Q.Direct_elem (q.X.local, [], [ gen_body g t body ])
          | X.Document -> gen_body g t body
          | X.Text _ -> Q.Comp_text (Q.Fn_call ("string", [ Q.Var t.cur ]))
          | _ -> fail "xsl:copy on this node kind is not supported")
      | Functions ->
          (* node kind unknown statically: dispatch at run time *)
          let inner = gen_body g t body in
          Q.If
            ( Q.Instance_of (Q.Var t.cur, Q.It_element None),
              Q.Comp_elem (Q.Fn_call ("local-name", [ Q.Var t.cur ]), inner),
              Q.If
                ( Q.Instance_of (Q.Var t.cur, Q.It_text),
                  Q.Comp_text (Q.Fn_call ("string", [ Q.Var t.cur ])),
                  inner ) ))
  | C.O_if (test, body) -> Q.If (xq test, gen_body g t body, Q.Seq [])
  | C.O_choose branches ->
      let rec chain = function
        | [] -> Q.Seq []
        | (None, body) :: _ -> gen_body g t body
        | (Some c, body) :: rest -> Q.If (xq c, gen_body g t body, chain rest)
      in
      chain branches
  | C.O_for_each (select, sorts, body) ->
      let v = fresh g in
      let pv = if body_uses_position body then Some (fresh g) else None in
      let lv = if body_uses_last body then Some (fresh g) else None in
      let order =
        List.map
          (fun (s : A.sort_spec) ->
            let k = xp_to_q ~cur:v ?pos_var:pv ?last_var:lv ~keys:g.prog.C.keys s.A.sort_key in
            let k = if s.A.numeric then Q.Fn_call ("number", [ k ]) else Q.Fn_call ("string", [ k ]) in
            (k, s.A.descending))
          sorts
      in
      let source = xq select in
      let lets =
        match lv with
        | Some lvn -> [ Q.Let { var = lvn; value = Q.Fn_call ("count", [ source ]) } ]
        | None -> []
      in
      let clauses =
        lets
        @ (Q.For { var = v; pos_var = pv; source }
          :: (if order = [] then [] else [ Q.Order_by order ]))
      in
      Q.Flwor (clauses, gen_body g { t with cur = v; pos_var = pv; last_var = lv } body)
  | C.O_number _format ->
      (* level="single": count preceding siblings of the same name, +1 *)
      let count_siblings test predicates =
        Q.Comp_text
          (Q.Fn_call
             ( "string",
               [ Q.Binop
                   ( XP.Plus,
                     Q.Fn_call
                       ( "count",
                         [ Q.Path
                             ( Q.Var t.cur,
                               [ { XP.axis = XP.Preceding_sibling; test; predicates } ] ) ] ),
                     Q.Literal (Q.Num 1.) ) ] ))
      in
      (match t.strategy with
      | Inline state -> (
          match state.Trace.context.X.kind with
          | X.Element q -> count_siblings (XP.Name_test (None, q.X.local)) []
          | _ -> fail "xsl:number outside an element context")
      | Functions ->
          (* element name unknown statically: compare names dynamically *)
          count_siblings XP.Star
            [ XP.Binop
                ( XP.Eq,
                  XP.Call ("name", []),
                  XP.Call ("name", [ XP.Var t.cur ]) ) ])
  | C.O_message _ -> Q.Seq []
  | C.O_var _ -> assert false (* handled by gen_body's sequencing *)
  | C.O_call { site; target; params } -> gen_call g t ~site ~target ~params
  | C.O_apply { site; select; mode; sort; params } ->
      gen_apply g t ~site ~select ~mode ~sort ~params

and body_uses_fn pred (code : C.code) =
  Array.exists
    (fun op ->
      match op with
      | C.O_value_of e | C.O_copy_of e -> pred e
      | C.O_if (e, body) -> pred e || body_uses_fn pred body
      | C.O_choose bs ->
          List.exists
            (fun (c, b) ->
              (match c with Some c -> pred c | None -> false) || body_uses_fn pred b)
            bs
      | C.O_literal_elem (_, attrs, body) ->
          List.exists
            (fun (_, a) ->
              List.exists (function A.Avt_expr e -> pred e | A.Avt_str _ -> false) a)
            attrs
          || body_uses_fn pred body
      | C.O_elem (_, body) | C.O_attr (_, body) | C.O_comment body | C.O_copy body
      | C.O_message body ->
          body_uses_fn pred body
      | C.O_var (_, C.C_select e) -> pred e
      | C.O_var (_, C.C_tree body) -> body_uses_fn pred body
      | C.O_apply { select; _ } -> ( match select with Some e -> pred e | None -> false)
      | C.O_for_each (e, _, _) -> pred e
      | C.O_text _ | C.O_number _ | C.O_pi _ | C.O_call _ -> false)
    code

and body_uses_position code = body_uses_fn uses_position code

and body_uses_last code = body_uses_fn uses_last code

(* ------------------------------------------------------------------ *)
(* Apply/call expansion                                                *)
(* ------------------------------------------------------------------ *)

and gen_params g t params =
  List.map (fun (n, v) -> Q.Let { var = n; value = gen_cvalue g t v }) params

and default_params g t (ct : C.ctemplate) passed =
  (* defaults for parameters not passed at the call site *)
  List.filter_map
    (fun (n, d) ->
      if List.mem_assoc n passed then None
      else
        let value =
          match d with Some v -> gen_cvalue g t v | None -> Q.Literal (Q.Str "")
        in
        Some (Q.Let { var = n; value }))
    ct.C.tparams

and gen_call g t ~site ~target ~params =
  match t.strategy with
  | Inline _ when g.allow_partial && List.mem target g.cycles ->
      (* partial inline (§7.2 extension): the target is on a call cycle —
         emit a function call instead of unbounded inlining *)
      gen_function_call g t ~target ~params
  | Inline state -> (
      (* the trace recorded the instantiation; inline the body *)
      let entries = Trace.call_list state ~site:(Some site) in
      match entries with
      | [ { Trace.target = tstate; _ } ] ->
          let ct = g.prog.C.templates.(target) in
          let lets = gen_params g t params @ default_params g t ct params in
          let body = gen_state ?pos_var:t.pos_var ?last_var:t.last_var g tstate t.cur in
          if lets = [] then body else Q.Flwor (lets, body)
      | [] -> Q.Seq [] (* call never executed on the sample: dead code *)
      | _ -> fail "multiple trace entries for one call site")
  | Functions -> gen_function_call g t ~target ~params

(* emit a call to the XQuery function for template [target]; arguments are
   with-param values (caller context), else declared defaults evaluated with
   the same context node — call-template does not change the current node,
   so caller-side evaluation is exact *)
and gen_function_call g t ~target ~params =
  let ct = g.prog.C.templates.(target) in
  if not (List.mem target g.needed_funs) then g.needed_funs <- target :: g.needed_funs;
  let args =
    List.map
      (fun (pname, default) ->
        match List.assoc_opt pname params with
        | Some v -> gen_cvalue g t v
        | None -> (
            match default with
            | Some d -> gen_cvalue g t d
            | None -> Q.Literal (Q.Str "")))
      ct.C.tparams
  in
  let pos = match t.pos_var with Some p -> Q.Var p | None -> Q.Literal (Q.Num 1.) in
  let last = match t.last_var with Some l -> Q.Var l | None -> Q.Literal (Q.Num 1.) in
  Q.User_call (fun_name g target, Q.Var t.cur :: pos :: last :: args)

and fun_name g id =
  let ct = g.prog.C.templates.(id) in
  match ct.C.tname with
  | Some n -> Printf.sprintf "tmpl-%s" n
  | None -> Printf.sprintf "tmpl%d" id

(* path (list of child names) from ancestor [anc] to node [n] in the sample
   document; None if [n] is not in [anc]'s subtree *)
and sample_path anc n =
  let rec climb n acc =
    if n == anc then Some acc
    else
      match n.X.parent with
      | None -> None
      | Some p -> (
          match n.X.kind with
          | X.Element q -> climb p (q.X.local :: acc)
          | X.Text _ -> climb p ("#text" :: acc)
          | _ -> None)
  in
  climb n []

and occurs_of_sample_node n =
  match n.X.kind with
  | X.Element _ -> Xdb_schema.Sample.occurs_of_element n
  | _ -> S.many

and gen_apply g t ~site ~select ~mode ~sort ~params =
  ignore mode;
  match t.strategy with
  | Inline state -> gen_apply_inline g t state ~site ~select ~sort ~params
  | Functions -> gen_apply_functions g t ~site ~select ~sort ~params

(* ---- non-inline dispatch ------------------------------------------ *)

and gen_apply_functions g t ~site ~select ~sort ~params =
  ignore site;
  let site_args = List.map (fun (n, v) -> (n, gen_cvalue g t v)) params in
  let v = fresh g in
  let source =
    match select with
    | Some e -> gen_xp g t e
    | None ->
        Q.Path (Q.Var t.cur, [ { XP.axis = XP.Child; test = XP.Node_type_test XP.Any_node; predicates = [] } ])
  in
  let order =
    List.map
      (fun (s : A.sort_spec) ->
        let k = xp_to_q ~cur:v ~keys:g.prog.C.keys s.A.sort_key in
        let k = if s.A.numeric then Q.Fn_call ("number", [ k ]) else Q.Fn_call ("string", [ k ]) in
        (k, s.A.descending))
      sort
  in
  let pv = fresh g in
  let lv = fresh g in
  let dispatch = gen_dispatch_chain g v ~pos_arg:(Q.Var pv) ~last_arg:(Q.Var lv) ~site_args () in
  let clauses =
    Q.Let { var = lv; value = Q.Fn_call ("count", [ source ]) }
    :: Q.For { var = v; pos_var = Some pv; source }
    :: (if order = [] then [] else [ Q.Order_by order ])
  in
  Q.Flwor (clauses, dispatch)

(* conditional chain testing every template pattern (mode-less subset),
   ordered by priority then document order — the [9] translation.
   [site_args] are the apply site's with-param values (caller-evaluated);
   parameter defaults are evaluated with the dispatched node as context,
   matching XSLT's callee-side semantics *)
and gen_dispatch_chain g v ?(site_args = []) ?(pos_arg = Q.Literal (Q.Num 1.))
    ?(last_arg = Q.Literal (Q.Num 1.)) () : Q.expr =
  let candidates =
    Array.to_list g.prog.C.templates
    |> List.filter_map (fun (ct : C.ctemplate) ->
           match ct.C.pattern with
           | Some (pat, prio) when ct.C.tmode = None -> Some (ct, pat, prio)
           | _ -> None)
  in
  let candidates =
    (* keep only instantiated templates when the option is on and we have a trace *)
    match (g.graph, g.options.Options.remove_dead_templates) with
    | Some graph, true ->
        List.filter (fun ((ct : C.ctemplate), _, _) -> List.mem ct.C.t_id graph.Trace.instantiated) candidates
    | _ -> candidates
  in
  let ordered =
    List.stable_sort
      (fun ((a : C.ctemplate), _, pa) ((b : C.ctemplate), _, pb) ->
        match compare pb pa with 0 -> compare b.C.source_index a.C.source_index | c -> c)
      candidates
  in
  g.needs_builtin_fun <- true;
  let builtin_call = Q.User_call ("builtin", [ Q.Var v ]) in
  let callee_ctx =
    { cur = v; pos_var = None; last_var = None; strategy = Functions }
  in
  List.fold_right
    (fun ((ct : C.ctemplate), pat, _) rest ->
      if not (List.mem ct.C.t_id g.needed_funs) then g.needed_funs <- ct.C.t_id :: g.needed_funs;
      let args =
        List.map
          (fun (pname, default) ->
            match List.assoc_opt pname site_args with
            | Some e -> e
            | None -> (
                match default with
                | Some d -> gen_cvalue g callee_ctx d
                | None -> Q.Literal (Q.Str "")))
          ct.C.tparams
      in
      Q.If
        ( pattern_condition g v pat,
          Q.User_call (fun_name g ct.C.t_id, Q.Var v :: pos_arg :: last_arg :: args),
          rest ))
    ordered builtin_call

(* ---- inline expansion from the trace (§3.3, 3.4) ------------------- *)

and gen_apply_inline g t state ~site ~select ~sort ~params =
  let entries = Trace.call_list state ~site:(Some site) in
  if entries = [] then (
    (* a multi-step select over a recursive structure can pass through the
       unexpanded repeat and look empty on the sample: dispatch at run time
       under partial inline, fall back to functions otherwise *)
    if S.is_recursive g.schema then
      if g.allow_partial then gen_partial_site g t ~select ~sort ~params
      else fail "selection crosses an unexpanded recursive structure"
    else Q.Seq [])
  else begin
    (* group consecutive entries by their sample node *)
    let groups =
      let tbl = ref [] in
      List.iter
        (fun (tr : Trace.transition) ->
          let node = tr.Trace.target.Trace.context in
          match List.assq_opt node !tbl with
          | Some cell -> cell := tr :: !cell
          | None -> tbl := !tbl @ [ (node, ref [ tr ]) ])
        entries;
      List.map (fun (n, cell) -> (n, List.rev !cell)) !tbl
    in
    (* recursion marks on targets: the whole site switches to run-time
       dispatch under partial inline (the select may cover the boundary and
       the inlined groups alike); without the extension, inline mode fails *)
    if List.exists (fun (n, _) -> is_recursive_sample_node n) groups then
      if g.allow_partial then gen_partial_site g t ~select ~sort ~params
      else fail "recursive structure reached in inline mode"
    else
    let parent_group =
      match state.Trace.context.X.kind with
      | X.Element _ when select = None -> Xdb_schema.Sample.group_of_element state.Trace.context
      | _ -> S.Sequence
    in
    let effective_group =
      if not g.options.Options.use_model_groups then S.All
      else if select <> None then S.Sequence (* explicit select fixes the nodes *)
      else parent_group
    in
    match effective_group with
    | S.Sequence ->
        (* Table 14/15: one binding per distinct sample node, in order *)
        Q.Seq (List.map (fun (node, group) -> gen_group g t state ~select ~sort ~params node group) groups)
    | S.Choice ->
        (* Table 13: if/else on child existence *)
        let rec chain = function
          | [] -> Q.Seq []
          | (node, group) :: rest ->
              let path = sample_step_path g t state node ~select in
              Q.If
                ( Q.Fn_call ("exists", [ path ]),
                  gen_group g t state ~select ~sort ~params node group,
                  chain rest )
        in
        chain groups
    | S.All ->
        (* Table 12: iterate node() with instance-of tests *)
        let v = fresh g in
        let source =
          match select with
          | Some e -> gen_xp g t e
          | None ->
              Q.Path
                (Q.Var t.cur, [ { XP.axis = XP.Child; test = XP.Node_type_test XP.Any_node; predicates = [] } ])
        in
        let rec chain = function
          | [] -> Q.Seq []
          | (node, group) :: rest ->
              let test =
                match node.X.kind with
                | X.Element q -> Q.Instance_of (Q.Var v, Q.It_element (Some q.X.local))
                | X.Text _ -> Q.Instance_of (Q.Var v, Q.It_text)
                | _ -> Q.Literal (Q.Bool false)
              in
              Q.If (test, gen_targets g t ~params ~cur:v group, chain rest)
        in
        Q.Flwor ([ Q.For { var = v; pos_var = None; source } ], chain groups)
  end

(* the XQuery path selecting the sample node [node] from the current
   context, honouring an explicit select expression *)
and sample_step_path g t state node ~select : Q.expr =
  match select with
  | Some e -> gen_xp g t e
  | None -> (
      match sample_path state.Trace.context node with
      | Some names ->
          let steps =
            List.map
              (fun n ->
                if n = "#text" then
                  { XP.axis = XP.Child; test = XP.Node_type_test XP.Text_node; predicates = [] }
                else { XP.axis = XP.Child; test = XP.Name_test (None, n); predicates = [] })
              names
          in
          Q.Path (Q.Var t.cur, steps)
      | None -> fail "trace target is not inside the current context")

and is_recursive_sample_node node =
  match node.X.kind with
  | X.Element _ -> Xdb_schema.Sample.is_recursive_element node
  | _ -> false

(* partial inline (§7.2 extension): run-time dispatch over an apply site
   whose selection crosses a recursion boundary *)
and gen_partial_site g t ~select ~sort ~params =
  let source =
    match select with
    | Some e -> gen_xp g t e
    | None ->
        Q.Path
          (Q.Var t.cur, [ { XP.axis = XP.Child; test = XP.Node_type_test XP.Any_node; predicates = [] } ])
  in
  let site_args = List.map (fun (n, v) -> (n, gen_cvalue g t v)) params in
  let v = fresh g in
  let order =
    List.map
      (fun (sp : A.sort_spec) ->
        let k = xp_to_q ~cur:v ~keys:g.prog.C.keys sp.A.sort_key in
        let k = if sp.A.numeric then Q.Fn_call ("number", [ k ]) else Q.Fn_call ("string", [ k ]) in
        (k, sp.A.descending))
      sort
  in
  Q.Flwor
    ( Q.For { var = v; pos_var = None; source }
      :: (if order = [] then [] else [ Q.Order_by order ]),
      gen_dispatch_chain g v ~site_args () )

(* one sample node: bind with LET (cardinality one) or FOR, then inline the
   target template body (Table 15) *)
and gen_group g t state ~select ~sort ~params node group =
  let path = sample_step_path g t state node ~select in
  let occurs = occurs_of_sample_node node in
  let many = not (S.at_most_one occurs) || sort <> [] || not g.options.Options.use_cardinality in
  let v = fresh g in
  (* position()/last() inside the applied templates refer to the current
     node list of this apply site *)
  let target_codes =
    List.filter_map
      (fun (tr : Trace.transition) ->
        match tr.Trace.target.Trace.template with
        | Some id -> Some g.prog.C.templates.(id).C.tcode
        | None -> None)
      group
  in
  let pv =
    if List.exists body_uses_position target_codes then Some (fresh g) else None
  in
  let lv = if List.exists body_uses_last target_codes then Some (fresh g) else None in
  let body = gen_targets g { t with pos_var = pv; last_var = lv } ~params ~cur:v group in
  if many then
    let order =
      List.map
        (fun (s : A.sort_spec) ->
          let k = xp_to_q ~cur:v ~keys:g.prog.C.keys s.A.sort_key in
          let k = if s.A.numeric then Q.Fn_call ("number", [ k ]) else Q.Fn_call ("string", [ k ]) in
          (k, s.A.descending))
        sort
    in
    let lets =
      match lv with
      | Some lvn -> [ Q.Let { var = lvn; value = Q.Fn_call ("count", [ path ]) } ]
      | None -> []
    in
    Q.Flwor
      ( lets
        @ (Q.For { var = v; pos_var = pv; source = path }
          :: (if order = [] then [] else [ Q.Order_by order ])),
        body )
  else
    let lets =
      (match lv with
      | Some lvn -> [ Q.Let { var = lvn; value = Q.Fn_call ("count", [ path ]) } ]
      | None -> [])
      @ (match pv with
        | Some pvn -> [ Q.Let { var = pvn; value = Q.Literal (Q.Num 1.) } ]
        | None -> [])
    in
    Q.Flwor (lets @ [ Q.Let { var = v; value = path } ], body)

(* all trace targets for one sample node: distinct templates mean the
   pattern predicates discriminate at runtime (Table 18/19) *)
and gen_targets g t ~params ~cur group =
  let distinct =
    List.fold_left
      (fun acc (tr : Trace.transition) ->
        if List.exists (fun (s : Trace.gstate) -> s.Trace.template = tr.Trace.target.Trace.template) acc then acc
        else acc @ [ tr.Trace.target ])
      [] group
  in
  match distinct with
  | [] -> Q.Seq []
  | [ target ] -> gen_target g t ~params ~cur target
  | targets ->
      (* several templates fired for the same structural node: emit the
         pattern conditions to pick at runtime (conservative §4.1) *)
      let rec chain = function
        | [] -> Q.Seq []
        | (target : Trace.gstate) :: rest -> (
            match target.Trace.template with
            | None -> gen_target g t ~params ~cur target
            | Some id -> (
                let ct = g.prog.C.templates.(id) in
                match ct.C.pattern with
                | Some (pat, _) ->
                    Q.If (pattern_condition g cur pat, gen_target g t ~params ~cur target, chain rest)
                | None -> gen_target g t ~params ~cur target))
      in
      chain targets

and gen_target g t ~params ~cur (target : Trace.gstate) : Q.expr =
  match target.Trace.template with
  | None -> gen_state ?pos_var:t.pos_var ?last_var:t.last_var g target cur
  | Some id ->
      let ct = g.prog.C.templates.(id) in
      let lets = gen_params g t params @ default_params g t ct params in
      let body = gen_state ?pos_var:t.pos_var ?last_var:t.last_var g target cur in
      if lets = [] then body else Q.Flwor (lets, body)

(* ------------------------------------------------------------------ *)
(* State generation (inline mode)                                      *)
(* ------------------------------------------------------------------ *)

(** Generate the XQuery for one execution-graph state with the context node
    in variable [cur]. *)
and gen_state ?pos_var ?last_var g (state : Trace.gstate) (cur : string) : Q.expr =
  match state.Trace.template with
  | Some id ->
      let ct = g.prog.C.templates.(id) in
      gen_body g { cur; pos_var; last_var; strategy = Inline state } ct.C.tcode
  | None -> (
      (* built-in rule *)
      match state.Trace.context.X.kind with
      | X.Text _ | X.Attribute _ -> Q.Comp_text (Q.Fn_call ("string", [ Q.Var cur ]))
      | X.Comment _ | X.Pi _ -> Q.Seq []
      | X.Document | X.Element _ ->
          (* children dispatch recorded under site None *)
          let fake_apply =
            C.O_apply { site = -1; select = None; mode = None; sort = []; params = [] }
          in
          ignore fake_apply;
          gen_builtin_children g state cur)

and gen_builtin_children g state cur : Q.expr =
  let entries = Trace.call_list state ~site:None in
  if entries = [] then Q.Seq []
  else
    let t = { cur; pos_var = None; last_var = None; strategy = Inline state } in
    (* reuse the inline apply machinery with select = None *)
    let groups =
      let tbl = ref [] in
      List.iter
        (fun (tr : Trace.transition) ->
          let node = tr.Trace.target.Trace.context in
          match List.assq_opt node !tbl with
          | Some cell -> cell := tr :: !cell
          | None -> tbl := !tbl @ [ (node, ref [ tr ]) ])
        entries;
      List.map (fun (n, cell) -> (n, List.rev !cell)) !tbl
    in
    if List.exists (fun (n, _) -> is_recursive_sample_node n) groups then
      if g.allow_partial then gen_partial_site g t ~select:None ~sort:[] ~params:[]
      else fail "recursive structure reached in inline mode"
    else
      Q.Seq
        (List.map
           (fun (node, group) -> gen_group g t state ~select:None ~sort:[] ~params:[] node group)
           groups)

(* ------------------------------------------------------------------ *)
(* Built-in-only compaction (§3.6, Tables 20–21)                        *)
(* ------------------------------------------------------------------ *)

let all_builtin (graph : Trace.t) =
  List.for_all (fun (s : Trace.gstate) -> s.Trace.template = None) graph.Trace.states

(** The compact query for a stylesheet where every node uses the built-in
    template: concatenate all descendant text values.  (The paper's Table
    21 prints a space separator; the XSLT built-in rules concatenate
    without one, so we join on the empty string for exact equivalence and
    note the difference in EXPERIMENTS.md.) *)
let builtin_only_query () : Q.expr =
  let v = "var002" in
  Q.Fn_call
    ( "string-join",
      [ Q.Flwor
          ( [ Q.For
                { var = v;
                  pos_var = None;
                  source =
                    Q.Path
                      ( Q.Var root_var,
                        [ { XP.axis = XP.Descendant_or_self;
                            test = XP.Node_type_test XP.Any_node;
                            predicates = [] };
                          { XP.axis = XP.Self; test = XP.Node_type_test XP.Text_node; predicates = [] } ] )
                } ],
            Q.Fn_call ("string", [ Q.Var v ]) );
        Q.Literal (Q.Str "") ] )

(* ------------------------------------------------------------------ *)
(* Function (non-inline) mode                                          *)
(* ------------------------------------------------------------------ *)

let gen_functions g : Q.fundef list =
  (* iterate to a fixpoint: generating bodies may demand more functions *)
  let produced : (int, Q.fundef) Hashtbl.t = Hashtbl.create 16 in
  let rec drain () =
    let pending = List.filter (fun id -> not (Hashtbl.mem produced id)) g.needed_funs in
    match pending with
    | [] -> ()
    | _ ->
        List.iter
          (fun id ->
            let ct = g.prog.C.templates.(id) in
            (* reserved parameter names ("__*") cannot collide with
               stylesheet variables *)
            let cur = "__ctx" in
            let body =
              gen_body g
                { cur; pos_var = Some "__pos"; last_var = Some "__last"; strategy = Functions }
                ct.C.tcode
            in
            let params = cur :: "__pos" :: "__last" :: List.map fst ct.C.tparams in
            Hashtbl.replace produced id { Q.fname = fun_name g id; params; body })
          pending;
        drain ()
  in
  drain ();
  let funs = Hashtbl.fold (fun _ f acc -> f :: acc) produced [] in
  let funs = List.sort (fun a b -> compare a.Q.fname b.Q.fname) funs in
  if g.needs_builtin_fun then
    let v = "__ctx" in
    let children =
      Q.Path (Q.Var v, [ { XP.axis = XP.Child; test = XP.Node_type_test XP.Any_node; predicates = [] } ])
    in
    let c = fresh g in
    let pv = fresh g in
    let lv = fresh g in
    let builtin_body =
      Q.If
        ( Q.Instance_of (Q.Var v, Q.It_text),
          Q.Comp_text (Q.Fn_call ("string", [ Q.Var v ])),
          Q.Flwor
            ( [
                Q.Let { var = lv; value = Q.Fn_call ("count", [ children ]) };
                Q.For { var = c; pos_var = Some pv; source = children };
              ],
              gen_dispatch_chain g c ~pos_arg:(Q.Var pv) ~last_arg:(Q.Var lv) () ) )
    in
    funs @ [ { Q.fname = "builtin"; params = [ v ]; body = builtin_body } ]
  else funs

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type mode_used = Mode_inline | Mode_partial_inline | Mode_functions | Mode_builtin_compact

type result = {
  query : Q.prog;
  mode : mode_used;
  graph : Trace.t option;
}

let gen_dispatch_chain_root g =
  (* initial application to the document root *)
  let v = fresh g in
  Q.Flwor ([ Q.Let { var = v; value = Q.Var root_var } ], gen_dispatch_chain g v ())

(** [translate ?options prog ~schema] — partial-evaluate the compiled
    stylesheet [prog] over [schema]'s sample document and generate XQuery. *)
let translate ?(options = Options.default) (prog : C.program) ~(schema : S.t) : result =
  let sample = Xdb_schema.Sample.generate schema in
  let graph = Trace.run prog sample in
  let cycles = call_cycles prog in
  let fresh_gen ~allow_partial =
    { prog; schema; options; graph = Some graph; cycles; allow_partial; counter = 0;
      needed_funs = []; needs_builtin_fun = false }
  in
  let functions_translation () =
    let g = fresh_gen ~allow_partial:false in
    let body = gen_dispatch_chain_root g in
    let funs = gen_functions g in
    { query = { Q.var_decls = [ (root_var, Q.Context_item) ]; funs; body };
      mode = Mode_functions; graph = Some graph }
  in
  let recursive_structure = S.is_recursive schema in
  let recursive = graph.Trace.recursive || recursive_structure in
  if options.Options.builtin_compaction && all_builtin graph && not recursive then
    {
      query = Q.with_context_var root_var (builtin_only_query ());
      mode = Mode_builtin_compact;
      graph = Some graph;
    }
  else if options.Options.inline_templates
          && ((not recursive) || options.Options.partial_inline) then (
    try
      let g = fresh_gen ~allow_partial:options.Options.partial_inline in
      let body = gen_state g graph.Trace.root root_var in
      let body = Xdb_xquery.Compose.simplify body in
      let funs = gen_functions g in
      let mode = if funs = [] then Mode_inline else Mode_partial_inline in
      { query = { Q.var_decls = [ (root_var, Q.Context_item) ]; funs; body };
        mode; graph = Some graph }
    with Not_translatable _ -> functions_translation ())
  else functions_translation ()

(** The straightforward [9]-style translation: no sample document, no
    structural information — every template becomes a function. *)
let translate_straightforward (prog : C.program) ~(schema : S.t) : result =
  let g =
    { prog; schema; options = Options.straightforward; graph = None;
      cycles = []; allow_partial = false; counter = 0;
      needed_funs = []; needs_builtin_fun = false }
  in
  let body = gen_dispatch_chain_root g in
  let funs = gen_functions g in
  { query = { Q.var_decls = [ (root_var, Q.Context_item) ]; funs; body };
    mode = Mode_functions;
    graph = None }
