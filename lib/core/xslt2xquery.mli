(** XSLT → XQuery translation (the paper's core contribution, §3–§4).

    Generation modes:
    - {b inline} — acyclic execution graph: one main expression, templates
      inlined with the §3.3–3.7 techniques;
    - {b builtin-compact} — §3.6: every node uses the built-in rules, so
      the whole stylesheet compacts to a [string-join] over text nodes;
    - {b non-inline} — recursion (or inlining disabled): one XQuery
      function per template with conditional dispatch at apply sites —
      also the shape of the straightforward [9] translation;
    - {b partial-inline} — the §7.2 future-work extension
      ({!Options.with_partial_inline}): only templates on call cycles (and
      apply sites crossing a recursive structure boundary) leave the
      inline expansion. *)

exception Not_translatable of string

val root_var : string
(** Name of the context variable the generated queries declare
    ([declare variable $var000 := .]). *)

type mode_used = Mode_inline | Mode_partial_inline | Mode_functions | Mode_builtin_compact

type result = {
  query : Xdb_xquery.Ast.prog;
  mode : mode_used;
  graph : Trace.t option;  (** [None] for the straightforward translation *)
}

val translate :
  ?options:Options.t ->
  Xdb_xslt.Compile.program ->
  schema:Xdb_schema.Types.t ->
  result
(** Partially evaluate the compiled stylesheet over [schema]'s sample
    document and generate XQuery. *)

val translate_straightforward :
  Xdb_xslt.Compile.program -> schema:Xdb_schema.Types.t -> result
(** The straightforward translation of Fokoue et al. [9]: no sample
    document, no structural information — every template becomes a
    function, dispatch is a conditional chain testing every pattern. *)
