(** Pipeline metrics: named stage timings plus named counters, collected
    across one compile/run and rendered as stable JSON.  Insertion order
    is preserved; re-timing an existing stage accumulates into it.

    Thread safety: every operation takes the collector's internal mutex,
    so one collector may be updated from several domains; parallel runs
    instead give each domain a private collector and fold them together
    with {!merge_into} after the join. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t stage f] — run [f], accumulating its wall time (ms) under
    [stage]; the stage is charged even when [f] raises. *)

val add_ms : t -> string -> float -> unit
(** Accumulate milliseconds under a stage without running anything. *)

val incr : ?by:int -> t -> string -> unit
(** Increment a counter (created at 0 on first use). *)

val set_counter : t -> string -> int -> unit
(** Overwrite a counter's value. *)

val stages : t -> (string * float) list
(** Stage timings in insertion order, milliseconds. *)

val counters : t -> (string * int) list
(** Counters in insertion order. *)

val total_ms : t -> float
(** Sum of all stage timings. *)

val merge_into : into:t -> t -> unit
(** Fold one collector's stages and counters into another, summing on
    name collision — how domain-parallel runs combine their per-domain
    collectors. *)

val to_json : t -> string
(** Stable JSON [{"stages":{…},"counters":{…}}], insertion-ordered. *)
