(** Partial evaluation of a stylesheet over a sample document (paper §4.3):
    run the trace-instrumented XSLTVM on the structural sample and build
    the template execution graph and the per-site trace-call-lists. *)

type gstate = {
  id : int;
  template : int option;  (** [None] = built-in rule *)
  context : Xdb_xml.Types.node;  (** sample node this instantiation ran on *)
  mutable transitions : transition list;  (** in activation order *)
}

and transition = {
  site : int option;  (** apply/call site; [None] = built-in implicit apply *)
  target : gstate;
}

type t = {
  root : gstate;  (** initial activation on the sample document root *)
  states : gstate list;  (** all states, in creation order *)
  recursive : bool;  (** a template was re-entered while active *)
  instantiated : int list;  (** user template ids that fired, sorted *)
  n_states : int;
}

exception Trace_error of string

val run : Xdb_xslt.Compile.program -> Xdb_xml.Types.node -> t
(** Execute the VM over the sample document with trace instructions
    enabled and assemble the graph.
    @raise Trace_error on unbalanced trace events. *)

val call_list : gstate -> site:int option -> transition list
(** Transitions of a state for one site, in activation order — the §4.3
    trace-call-list of an [apply-templates]. *)

val to_string : t -> string
(** Indented rendering of the execution graph. *)
