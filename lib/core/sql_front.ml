(** SQL/XML statement routing over the core pipeline — the half of the
    SQL surface that needs XMLType views, XSLT views and the compiled
    transform machinery.  The plain-relational half (base-table SELECTs,
    ANALYZE, DML) lives in [Xdb_sql.Engine]; this module layers the
    paper's routing on top:

    - [SELECT XMLTransform(v.col, '…') FROM v] over a publishing view
      runs the full XSLT rewrite (stylesheet → XQuery → SQL/XML plan
      over the base tables) and falls back to functional evaluation only
      when the generated query leaves the rewritable fragment;
    - [XMLQuery('…' PASSING v.col RETURNING CONTENT)] runs the
      XQuery→SQL/XML rewrite directly;
    - the same over an {e XSLT view} (paper Example 2) applies the
      combined optimisation: the outer path composes statically over the
      generated constructor tree, rewritten to one plan;
    - [CREATE VIEW … AS SELECT XMLTransform(…)] creates an XSLT view.

    The caller supplies a {!ctx} of capabilities (view lookup, cached
    compilation, XSLT-view registration); {!Engine.execute} builds it
    over its registry so plans compile through the plan cache and XSLT
    views live on the engine, shared by every session. *)

module A = Xdb_rel.Algebra
module V = Xdb_rel.Value
module P = Xdb_rel.Publish
module E = Xdb_rel.Exec
module Q = Xdb_xquery.Ast
module Sql = Xdb_sql.Engine
open Xdb_sql.Ast

let err fmt = Printf.ksprintf (fun m -> raise (Sql.Sql_error m)) fmt

type xslt_view = {
  xv_name : string;
  xv_column : string;  (** name of the transformed output column *)
  xv_compiled : Pipeline.compiled;
}

type ctx = {
  db : Xdb_rel.Database.t;
  find_xml_view : string -> P.view option;
      (** case-insensitive lookup of a registered XMLType publishing view *)
  find_xslt_view : string -> xslt_view option;
  register_xslt_view : xslt_view -> unit;
  compile : P.view -> string -> Pipeline.compiled;
      (** stylesheet compilation — {!Engine} passes the registry's cached
          compile, so repeated statements share plans *)
}

(* ------------------------------------------------------------------ *)
(* XMLType-view selects                                                *)
(* ------------------------------------------------------------------ *)

let run_xml_view_select ctx (view : P.view) (sel : select) : Sql.result =
  let alias = Option.value ~default:sel.from_name sel.from_alias in
  let notes = ref [] in
  (* translate each select item into a per-base-row SQL/XML expression; when
     a translation is impossible, fall back to functional evaluation for
     that item *)
  let translate_item i (e, item_alias) :
      string * [ `Sql of A.expr | `Functional of Xdb_xml.Types.node -> string ] =
    let name = Sql.item_name i (e, item_alias) in
    match e with
    | Xml_transform (input, stylesheet) when Sql.is_view_column view alias input -> (
        let compiled = ctx.compile view stylesheet in
        match compiled.Pipeline.sql_plan with
        | Some _ ->
            notes :=
              Printf.sprintf "%s: XSLT rewrite (%s mode)" name
                (Pipeline.mode_name compiled.Pipeline.translation.Xslt2xquery.mode)
              :: !notes;
            ( name,
              `Sql
                (Xdb_xquery.Sql_rewrite.rewrite_prog view
                   compiled.Pipeline.translation.Xslt2xquery.query) )
        | None ->
            notes :=
              Printf.sprintf "%s: functional fallback (%s)" name
                (Option.value ~default:"?" compiled.Pipeline.sql_fallback_reason)
              :: !notes;
            ( name,
              `Functional
                (fun doc ->
                  let frag = Xdb_xslt.Vm.transform compiled.Pipeline.vm_prog doc in
                  Xdb_xml.Serializer.node_list_to_string frag.Xdb_xml.Types.children) ))
    | Xml_query { query; passing } when Sql.is_view_column view alias passing -> (
        let prog = Xdb_xquery.Parser.parse_prog query in
        match Xdb_xquery.Sql_rewrite.rewrite_prog view prog with
        | sql ->
            notes := Printf.sprintf "%s: XQuery rewrite" name :: !notes;
            (name, `Sql sql)
        | exception Xdb_xquery.Sql_rewrite.Not_rewritable reason ->
            notes := Printf.sprintf "%s: dynamic XQuery (%s)" name reason :: !notes;
            ( name,
              `Functional
                (fun doc ->
                  Xdb_xml.Serializer.node_list_to_string
                    (Xdb_xquery.Eval.run_to_nodes prog ~context:doc)) ))
    | Col _ -> (name, `Sql (Sql.plain_expr e))
    | _ -> err "unsupported select item over an XMLType view"
  in
  let items = List.mapi translate_item sel.items in
  let scan = A.Seq_scan { table = view.P.base_table; alias = view.P.base_alias } in
  let filtered =
    match sel.where with None -> scan | Some w -> A.Filter (Sql.plain_expr w, scan)
  in
  let sql_fields =
    List.filter_map (function n, `Sql e -> Some (e, n) | _, `Functional _ -> None) items
  in
  let plan = Xdb_rel.Optimizer.optimize_deep ctx.db (A.Project (sql_fields, filtered)) in
  let layout, sql_rows = E.run_arrays ctx.db plan in
  (* functional items evaluate over materialised documents, row-aligned *)
  let functional_items =
    List.filter_map (function n, `Functional f -> Some (n, f) | _ -> None) items
  in
  let docs =
    if functional_items = [] then []
    else if sel.where <> None then
      err "WHERE is not supported together with non-rewritable XML select items"
    else P.materialize ctx.db view
  in
  let columns = List.map fst items in
  (* resolve every SQL item's output slot once against the plan layout *)
  let extractors =
    List.map
      (fun (n, kind) ->
        match kind with
        | `Sql _ -> (
            match Xdb_rel.Layout.slot_opt layout n with
            | Some s -> fun (r : V.t array) _ -> r.(s)
            | None -> err "plan lost column %s" n)
        | `Functional f -> fun _ row_idx -> V.Str (f (List.nth docs row_idx)))
      items
  in
  let rows =
    List.mapi (fun row_idx sql_row -> List.map (fun ex -> ex sql_row row_idx) extractors) sql_rows
  in
  { Sql.columns; rows; note = Some (String.concat "; " (List.rev !notes)) }

(* ------------------------------------------------------------------ *)
(* XSLT-view selects (Example 2)                                       *)
(* ------------------------------------------------------------------ *)

(* extract a child-step path from "for $x in ./steps return $x" or "./steps" *)
let forwarding_steps (prog : Q.prog) : Xdb_xpath.Ast.step list option =
  let plain_child_steps steps =
    if
      List.for_all
        (fun (s : Xdb_xpath.Ast.step) ->
          s.Xdb_xpath.Ast.axis = Xdb_xpath.Ast.Child && s.Xdb_xpath.Ast.predicates = [])
        steps
    then Some steps
    else None
  in
  match (prog.Q.var_decls, prog.Q.funs, prog.Q.body) with
  | [], [], Q.Path (Q.Context_item, steps) -> plain_child_steps steps
  | [], [], Q.Flwor ([ Q.For { var; source = Q.Path (Q.Context_item, steps); _ } ], Q.Var v)
    when v = var ->
      plain_child_steps steps
  | _ -> None

let run_xslt_view_select ctx (xv : xslt_view) (sel : select) : Sql.result =
  if sel.where <> None then err "WHERE over an XSLT view is not supported";
  let alias = Option.value ~default:sel.from_name sel.from_alias in
  let item =
    match sel.items with
    | [ (e, alias_opt) ] -> (e, Sql.item_name 0 (e, alias_opt))
    | _ -> err "exactly one select item is supported over an XSLT view"
  in
  match item with
  | Xml_query { query; passing }, name
    when (match passing with
         | Col (None, c) -> String.lowercase_ascii c = String.lowercase_ascii xv.xv_column
         | Col (Some a, c) ->
             String.lowercase_ascii c = String.lowercase_ascii xv.xv_column
             && (String.lowercase_ascii a = String.lowercase_ascii alias
                || String.lowercase_ascii a = String.lowercase_ascii xv.xv_name)
         | _ -> false) -> (
      let prog = Xdb_xquery.Parser.parse_prog query in
      let combined_plan, composed, note =
        match forwarding_steps prog with
        | Some steps ->
            let plan, composed = Pipeline.compose ctx.db xv.xv_compiled steps in
            (plan, Some composed, "combined XSLT+XQuery optimisation")
        | None -> (None, None, "dynamic evaluation over the XSLT view result")
      in
      match (combined_plan, composed) with
      | Some plan, _ ->
          let layout, rows = E.run_arrays ctx.db plan in
          let slot =
            match Xdb_rel.Layout.slot_opt layout "result" with
            | Some s -> s
            | None -> err "combined plan produced no result column"
          in
          {
            Sql.columns = [ name ];
            rows = List.map (fun (r : V.t array) -> [ r.(slot) ]) rows;
            note = Some (note ^ " (paper Table 11 plan)");
          }
      | None, Some composed ->
          let outs = Pipeline.run_composed_dynamic ctx.db xv.xv_compiled composed in
          {
            Sql.columns = [ name ];
            rows = List.map (fun s -> [ V.Str s ]) outs;
            note = Some note;
          }
      | None, None ->
          (* evaluate the XSLT view, then the outer query on each result *)
          let inner = Pipeline.run_rewrite ctx.db xv.xv_compiled in
          let outs =
            List.map
              (fun text ->
                let doc = Xdb_xml.Parser.parse_fragment text in
                let wrapper = Xdb_xml.Parser.document_element doc in
                V.Str
                  (Xdb_xml.Serializer.node_list_to_string
                     (Xdb_xquery.Eval.run_to_nodes prog ~context:wrapper)))
              inner
          in
          {
            Sql.columns = [ name ];
            rows = List.map (fun v -> [ v ]) outs;
            note = Some note;
          })
  | Col (_, c), name when String.lowercase_ascii c = String.lowercase_ascii xv.xv_column ->
      let outs = Pipeline.run_rewrite ctx.db xv.xv_compiled in
      {
        Sql.columns = [ name ];
        rows = List.map (fun s -> [ V.Str s ]) outs;
        note = Some "XSLT view evaluated through the rewrite";
      }
  | _ -> err "unsupported select item over an XSLT view"

(* ------------------------------------------------------------------ *)
(* Statement routing                                                   *)
(* ------------------------------------------------------------------ *)

let run_select ctx (sel : select) : Sql.result =
  match ctx.find_xslt_view sel.from_name with
  | Some xv -> run_xslt_view_select ctx xv sel
  | None -> (
      match ctx.find_xml_view sel.from_name with
      | Some view -> run_xml_view_select ctx view sel
      | None -> (
          match Xdb_rel.Database.table_opt ctx.db sel.from_name with
          | Some tbl -> Sql.run_table_select ctx.db tbl sel
          | None -> err "unknown table or view %S" sel.from_name))

let run_create_view ctx name (sel : select) : Sql.result =
  (* only XSLT views (a single XMLTransform over a publishing view) can
     be created from SQL; publishing views are registered via the API *)
  match ctx.find_xml_view sel.from_name with
  | None -> err "CREATE VIEW: FROM must name a registered XMLType view"
  | Some view -> (
      match sel.items with
      | [ (Xml_transform (input, stylesheet), alias) ]
        when Sql.is_view_column view (Option.value ~default:sel.from_name sel.from_alias) input
        ->
          if sel.where <> None then err "CREATE VIEW: WHERE is not supported";
          let compiled = ctx.compile view stylesheet in
          let column = Option.value ~default:"xslt_rslt" alias in
          ctx.register_xslt_view { xv_name = name; xv_column = column; xv_compiled = compiled };
          {
            Sql.columns = [];
            rows = [];
            note =
              Some
                (Printf.sprintf "XSLT view %s(%s) created (%s mode)" name column
                   (Pipeline.mode_name compiled.Pipeline.translation.Xslt2xquery.mode));
          }
      | _ -> err "CREATE VIEW: body must be a single XMLTransform over the view column")

(** [run ctx stmt] — route one parsed statement: view selects and CREATE
    VIEW through the pipeline, everything plain-relational (base-table
    selects, ANALYZE, DML) through [Xdb_sql.Engine]. *)
let run ctx (stmt : statement) : Sql.result =
  match stmt with
  | Select sel -> run_select ctx sel
  | Analyze target -> Sql.run_analyze ctx.db target
  | Create_view (name, sel) -> run_create_view ctx name sel
  | Insert _ | Update _ | Delete _ -> Sql.run_dml ctx.db stmt
