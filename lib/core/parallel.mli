(** Fixed-size domain pool for data-parallel transform execution.

    The pool spawns [jobs - 1] worker domains (the caller itself is the
    remaining worker: it helps drain the task queue inside {!run}, so
    [jobs = 1] degenerates to plain sequential execution with zero domains
    spawned and no synchronisation beyond an uncontended mutex).

    Tasks are indexed closures; results are written into a slot array keyed
    by task index, so result ordering is deterministic regardless of which
    domain executes which task. The first exception raised by any task is
    captured and re-raised (with its original backtrace) at the join point
    after all tasks have settled.

    Used by {!Pipeline} to partition base-table rows across domains
    (paper §3: the rewrite path turns one XMLTransform call into a
    per-base-table-row relational plan, which is embarrassingly parallel). *)

type t

val default_jobs : unit -> int
(** Number of domains recommended for this machine:
    [Domain.recommended_domain_count ()], clamped to at least 1. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [max jobs 1 - 1] worker domains that block on the
    pool's task queue. The pool is reusable across many {!run} calls. *)

val jobs : t -> int
(** Worker count the pool was created with (including the caller). *)

val run : t -> (int -> 'a) -> int -> 'a array
(** [run pool f n] evaluates [f 0 .. f (n-1)] across the pool's domains and
    returns the results in index order. Blocks until every task has settled.
    Tasks must not themselves call {!run} on the same pool. If one or more
    tasks raise, the first exception observed is re-raised after the join. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list pool f xs] is [run] over the elements of [xs], preserving
    order. *)

val chunk_ranges : total:int -> chunks:int -> (int * int) list
(** [chunk_ranges ~total ~chunks] splits [0 .. total-1] into at most
    [chunks] contiguous half-open ranges [(lo, hi)] covering the interval
    in order, balanced to within one element. Returns [[]] when
    [total <= 0]; returns fewer than [chunks] ranges when [total < chunks]
    (never emits an empty range). *)

val shutdown : t -> unit
(** Joins all worker domains. Idempotent; the pool must not be used after.
    Calling {!run} on a shut-down pool raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] creates a pool, applies [f], and shuts the pool down
    (also on exception). *)
