(* Concurrent serving layer: sessions + admission control + fair
   FIFO scheduling over one shared Engine.  See server.mli.

   Locking model: one server mutex guards every mutable field (queue,
   counters, latency samples).  Requests execute on the calling thread
   outside the lock; the lock is only held to admit, to release, and to
   snapshot.  Waiters block on [sched], re-checking eligibility after
   every broadcast (a release, a close, or shutdown). *)

(* latency accumulator: raw samples (ms), newest first *)
type lat = {
  mutable samples : float list;
  mutable n : int;
  mutable sum : float;
  mutable max : float;
}

let lat_create () = { samples = []; n = 0; sum = 0.0; max = 0.0 }

let lat_add l ms =
  l.samples <- ms :: l.samples;
  l.n <- l.n + 1;
  l.sum <- l.sum +. ms;
  if ms > l.max then l.max <- ms

(* one side's counters: the server or one session *)
type side = {
  mutable accepted : int;
  mutable rejected : int;
  mutable queued : int;
  mutable completed : int;
  mutable failed : int;
  queue_wait : lat;
  service : lat;
}

let side_create () =
  {
    accepted = 0;
    rejected = 0;
    queued = 0;
    completed = 0;
    failed = 0;
    queue_wait = lat_create ();
    service = lat_create ();
  }

type session = {
  server : t;
  sname : string;
  s_options : Engine.run_options;
  mutable s_in_flight : int;
  mutable closed : bool;
  s_side : side;
}

and t = {
  eng : Engine.t;
  max_in_flight : int;
  max_queue : int;
  per_session_cap : int;
  defaults : Engine.run_options;
  lock : Mutex.t;
  sched : Condition.t;
  mutable stopped : bool;
  mutable in_flight : int;
  mutable next_ticket : int;
  mutable waiting : (int * session) list;  (* ascending ticket = FIFO *)
  mutable sessions : session list;  (* newest first, for metrics *)
  mutable next_session : int;
  side : side;
}

let create ?max_in_flight ?(max_queue = 64) ?per_session_cap
    ?(defaults = Engine.default_run_options) eng =
  let max_in_flight =
    max 1 (match max_in_flight with Some n -> n | None -> Parallel.default_jobs ())
  in
  {
    eng;
    max_in_flight;
    max_queue = max 0 max_queue;
    per_session_cap =
      max 1 (match per_session_cap with Some n -> n | None -> max_in_flight);
    defaults;
    lock = Mutex.create ();
    sched = Condition.create ();
    stopped = false;
    in_flight = 0;
    next_ticket = 0;
    waiting = [];
    sessions = [];
    next_session = 0;
    side = side_create ();
  }

let engine t = t.eng

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let exec_error m = Xdb_error.Error (Xdb_error.Exec m)
let overloaded m = Xdb_error.Error (Xdb_error.Overloaded m)

let open_session ?name ?options t =
  locked t (fun () ->
      if t.stopped then raise (exec_error "server has been shut down");
      t.next_session <- t.next_session + 1;
      let sname =
        match name with Some n -> n | None -> Printf.sprintf "s%d" t.next_session
      in
      let sess =
        {
          server = t;
          sname;
          s_options = Option.value options ~default:t.defaults;
          s_in_flight = 0;
          closed = false;
          s_side = side_create ();
        }
      in
      t.sessions <- sess :: t.sessions;
      sess)

let close_session sess =
  locked sess.server (fun () ->
      sess.closed <- true;
      (* wake its queued requests so they raise instead of waiting *)
      Condition.broadcast sess.server.sched)

let session_name sess = sess.sname

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

(* Called under the lock.  A request with [ticket] may start when the
   server has a free slot, its session is under its fair-share cap, and
   every earlier waiter is blocked by its own session cap (FIFO with
   per-session-cap skip: earlier waiters that *could* run win; earlier
   waiters whose session is saturated are stepped over). *)
let eligible t ticket sess =
  t.in_flight < t.max_in_flight
  && sess.s_in_flight < t.per_session_cap
  && List.for_all
       (fun (k, s) -> k >= ticket || s.s_in_flight >= t.per_session_cap)
       t.waiting

(* under the lock: take the slot *)
let start t sess =
  t.in_flight <- t.in_flight + 1;
  sess.s_in_flight <- sess.s_in_flight + 1;
  t.side.accepted <- t.side.accepted + 1;
  sess.s_side.accepted <- sess.s_side.accepted + 1

let reject t sess reason =
  t.side.rejected <- t.side.rejected + 1;
  sess.s_side.rejected <- sess.s_side.rejected + 1;
  raise (overloaded reason)

(* Admit one request: returns the queue wait in ms (0 when admitted
   immediately).  Raises Overloaded / Exec per the .mli contract. *)
let acquire sess =
  let t = sess.server in
  locked t (fun () ->
      if sess.closed then raise (exec_error ("session " ^ sess.sname ^ " is closed"));
      if t.stopped then reject t sess "server is shutting down";
      let ticket = t.next_ticket in
      t.next_ticket <- ticket + 1;
      if eligible t ticket sess then (
        start t sess;
        0.0)
      else if List.length t.waiting >= t.max_queue then
        reject t sess
          (Printf.sprintf "%d in flight, queue of %d full" t.in_flight t.max_queue)
      else begin
        t.waiting <- t.waiting @ [ (ticket, sess) ];
        t.side.queued <- t.side.queued + 1;
        sess.s_side.queued <- sess.s_side.queued + 1;
        let t0 = Unix.gettimeofday () in
        let remove () =
          t.waiting <- List.filter (fun (k, _) -> k <> ticket) t.waiting;
          (* removal may unblock shutdown's drain wait or later waiters *)
          Condition.broadcast t.sched
        in
        let rec wait () =
          if t.stopped then (
            remove ();
            reject t sess "server is shutting down")
          else if sess.closed then (
            remove ();
            raise (exec_error ("session " ^ sess.sname ^ " is closed")))
          else if eligible t ticket sess then (
            remove ();
            start t sess)
          else (
            Condition.wait t.sched t.lock;
            wait ())
        in
        wait ();
        (Unix.gettimeofday () -. t0) *. 1000.0
      end)

let release sess ~queue_wait_ms ~service_ms ~ok =
  let t = sess.server in
  locked t (fun () ->
      t.in_flight <- t.in_flight - 1;
      sess.s_in_flight <- sess.s_in_flight - 1;
      List.iter
        (fun s ->
          lat_add s.queue_wait queue_wait_ms;
          lat_add s.service service_ms;
          if ok then s.completed <- s.completed + 1 else s.failed <- s.failed + 1)
        [ t.side; sess.s_side ];
      Condition.broadcast t.sched)

let effective_options ?options sess =
  match options with Some o -> o | None -> sess.s_options

let submit sess f =
  let queue_wait_ms = acquire sess in
  let t0 = Unix.gettimeofday () in
  let finish ok = release sess ~queue_wait_ms
      ~service_ms:((Unix.gettimeofday () -. t0) *. 1000.0) ~ok
  in
  match f sess.server.eng with
  | v ->
      finish true;
      v
  | exception e ->
      finish false;
      raise e

let transform ?options sess ~view_name ~stylesheet =
  let options = effective_options ?options sess in
  submit sess (fun eng -> Engine.transform ~options eng ~view_name ~stylesheet)

let publish ?options sess ~view_name =
  let options = effective_options ?options sess in
  submit sess (fun eng -> Engine.publish ~options eng ~view_name)

let execute sess text = submit sess (fun eng -> Engine.execute eng text)

(* pinned statements: prepared once (under admission control, since
   compilation shares the registry), reusable across requests *)
let prepare sess ~view_name ~stylesheet =
  submit sess (fun eng -> Engine.prepare eng ~view_name ~stylesheet)

let transform_stmt ?options sess stmt =
  let options = effective_options ?options sess in
  submit sess (fun eng -> Engine.transform_stmt ~options eng stmt)

let explain sess ~view_name ~stylesheet =
  submit sess (fun eng -> Engine.explain eng ~view_name ~stylesheet)

let explain_analyze ?options sess ~view_name ~stylesheet =
  let options = effective_options ?options sess in
  submit sess (fun eng -> Engine.explain_analyze ~options eng ~view_name ~stylesheet)

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

type summary = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

type snapshot = {
  accepted : int;
  rejected : int;
  queued : int;
  completed : int;
  failed : int;
  in_flight : int;
  queue_depth : int;
  queue_wait : summary;
  service : summary;
}

(* nearest-rank percentile over a sorted array *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))

let summarize l =
  if l.n = 0 then
    { count = 0; mean_ms = 0.0; p50_ms = 0.0; p95_ms = 0.0; p99_ms = 0.0; max_ms = 0.0 }
  else begin
    let sorted = Array.of_list l.samples in
    Array.sort compare sorted;
    {
      count = l.n;
      mean_ms = l.sum /. float_of_int l.n;
      p50_ms = percentile sorted 0.50;
      p95_ms = percentile sorted 0.95;
      p99_ms = percentile sorted 0.99;
      max_ms = l.max;
    }
  end

let snapshot_side (side : side) ~in_flight ~queue_depth =
  {
    accepted = side.accepted;
    rejected = side.rejected;
    queued = side.queued;
    completed = side.completed;
    failed = side.failed;
    in_flight;
    queue_depth;
    queue_wait = summarize side.queue_wait;
    service = summarize side.service;
  }

let snapshot t =
  locked t (fun () ->
      snapshot_side t.side ~in_flight:t.in_flight ~queue_depth:(List.length t.waiting))

let session_snapshot sess =
  locked sess.server (fun () ->
      let depth =
        List.length (List.filter (fun (_, s) -> s == sess) sess.server.waiting)
      in
      snapshot_side sess.s_side ~in_flight:sess.s_in_flight ~queue_depth:depth)

(* histogram bucket upper bounds, milliseconds *)
let bucket_bounds = [| 1.0; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0 |]

let bucket_name prefix i =
  if i < Array.length bucket_bounds then
    Printf.sprintf "%s_le_%gms" prefix bucket_bounds.(i)
  else Printf.sprintf "%s_gt_%gms" prefix bucket_bounds.(Array.length bucket_bounds - 1)

let bucketize m prefix samples =
  let counts = Array.make (Array.length bucket_bounds + 1) 0 in
  List.iter
    (fun ms ->
      let rec slot i =
        if i >= Array.length bucket_bounds then i
        else if ms <= bucket_bounds.(i) then i
        else slot (i + 1)
      in
      let i = slot 0 in
      counts.(i) <- counts.(i) + 1)
    samples;
  Array.iteri (fun i c -> Metrics.set_counter m (bucket_name prefix i) c) counts

let metrics t =
  let m = Metrics.create () in
  locked t (fun () ->
      let side = t.side in
      List.iter
        (fun (name, v) -> Metrics.set_counter m name v)
        [
          ("accepted", side.accepted);
          ("rejected", side.rejected);
          ("queued", side.queued);
          ("completed", side.completed);
          ("failed", side.failed);
          ("in_flight", t.in_flight);
          ("queue_depth", List.length t.waiting);
          ("sessions_total", t.next_session);
          ( "sessions_open",
            List.length (List.filter (fun s -> not s.closed) t.sessions) );
          ("max_in_flight", t.max_in_flight);
          ("max_queue", t.max_queue);
          ("per_session_cap", t.per_session_cap);
        ];
      bucketize m "queue_wait" side.queue_wait.samples;
      bucketize m "service" side.service.samples;
      (* the shared engine's result cache, so one scrape sees both the
         admission picture and the cache hit rate behind it *)
      List.iter
        (fun (name, v) -> Metrics.set_counter m name v)
        (Engine.result_cache_counters t.eng);
      List.iter
        (fun (prefix, l) ->
          let s = summarize l in
          Metrics.add_ms m (prefix ^ "_p50_ms") s.p50_ms;
          Metrics.add_ms m (prefix ^ "_p95_ms") s.p95_ms;
          Metrics.add_ms m (prefix ^ "_p99_ms") s.p99_ms;
          Metrics.add_ms m (prefix ^ "_total_ms") l.sum)
        [ ("queue_wait", side.queue_wait); ("service", side.service) ];
      List.iter
        (fun sess ->
          List.iter
            (fun (name, v) ->
              Metrics.set_counter m
                (Printf.sprintf "session.%s.%s" sess.sname name)
                v)
            [
              ("accepted", sess.s_side.accepted);
              ("rejected", sess.s_side.rejected);
              ("completed", sess.s_side.completed);
            ])
        (List.rev t.sessions));
  m

let metrics_json t = Metrics.to_json (metrics t)

let shutdown t =
  locked t (fun () ->
      t.stopped <- true;
      Condition.broadcast t.sched;
      (* queued requests reject themselves on wake; wait for the queue to
         empty and the in-flight work to finish *)
      while t.in_flight > 0 || t.waiting <> [] do
        Condition.wait t.sched t.lock
      done)
