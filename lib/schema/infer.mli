(** Schema inference from instance documents — the fallback structural
    information source when no schema/DTD/publishing view is registered.

    Conservative: out-of-order children demote [Sequence] to [All];
    repeated children promote cardinality to unbounded; children missing
    from some instances become optional. *)

val infer : ?root:string -> Xdb_xml.Types.node list -> Types.t
(** Scan element trees (documents or elements) and derive declarations.
    [root] overrides the root name (default: first element seen).
    @raise Types.Schema_error when no elements are present. *)
