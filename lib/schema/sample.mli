(** Sample XML document generation (paper §4.2): one document capturing
    structure but no content values, annotated in the Oracle-XDB-style
    namespace with [xdb:group], [xdb:occurs] and [xdb:recursive] so the
    partial evaluator reads model groups, cardinality and recursion marks
    off the instance.  Recursive structures expand exactly once. *)

val annot : string
(** Placeholder text/attribute value used for content slots. *)

val generate : Types.t -> Xdb_xml.Types.node
(** The annotated sample document (a document node). *)

val group_of_element : Xdb_xml.Types.node -> Types.model_group
(** Read the [xdb:group] annotation back (defaults to [Sequence]). *)

val occurs_of_element : Xdb_xml.Types.node -> Types.occurs
(** Read the [xdb:occurs] annotation back (defaults to [many]). *)

val is_recursive_element : Xdb_xml.Types.node -> bool
(** Is this element the unexpanded repeat of a recursive structure? *)
