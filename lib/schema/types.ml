(** Structural information about XML documents (paper §3.2, §4.2).

    This is the "X" of the partial evaluation [F(X, Y)]: element
    declarations with model groups (sequence / choice / all), child
    cardinalities, text-content flags and recursion marks.  It abstracts
    over the three concrete sources the paper lists: registered XML
    Schemas / DTDs, relational publishing specs, and static types of
    upstream XQuery/XSLT stages. *)

type model_group = Sequence | Choice | All

let model_group_name = function Sequence -> "sequence" | Choice -> "choice" | All -> "all"

type occurs = {
  min_occurs : int;
  max_occurs : int option;  (** [None] = unbounded *)
}

let exactly_one = { min_occurs = 1; max_occurs = Some 1 }
let optional = { min_occurs = 0; max_occurs = Some 1 }
let many = { min_occurs = 0; max_occurs = None }
let one_or_more = { min_occurs = 1; max_occurs = None }

(** At most one occurrence — drives LET vs FOR generation (paper §3.4). *)
let at_most_one o = match o.max_occurs with Some n -> n <= 1 | None -> false

let occurs_name o =
  match (o.min_occurs, o.max_occurs) with
  | 1, Some 1 -> "one"
  | 0, Some 1 -> "optional"
  | 1, None -> "one-or-more"
  | _ -> "many"

type particle = { child : string; occurs : occurs }

type element_decl = {
  name : string;
  group : model_group;
  particles : particle list;  (** child elements, in declared order *)
  has_text : bool;  (** may contain character data *)
  attrs : string list;  (** declared attribute names *)
}

type t = {
  root : string;  (** name of the document element *)
  decls : (string * element_decl) list;
}

exception Schema_error of string

let find schema name = List.assoc_opt name schema.decls

let find_exn schema name =
  match find schema name with
  | Some d -> d
  | None -> raise (Schema_error (Printf.sprintf "no declaration for element %S" name))

(** Build a schema from a declaration list, checking that every referenced
    child is declared and that the root exists. *)
let make ~root decls =
  let schema = { root; decls = List.map (fun d -> (d.name, d)) decls } in
  ignore (find_exn schema root);
  List.iter
    (fun (_, d) -> List.iter (fun p -> ignore (find_exn schema p.child)) d.particles)
    schema.decls;
  schema

(** Leaf declaration: text content only. *)
let leaf ?(attrs = []) name =
  { name; group = Sequence; particles = []; has_text = true; attrs }

(** Interior declaration. *)
let node ?(group = Sequence) ?(has_text = false) ?(attrs = []) name particles =
  { name; group; particles; has_text; attrs }

let particle ?(occurs = exactly_one) child = { child; occurs }

(** Names of elements involved in a cycle (self-reachable through particles). *)
let recursive_names schema =
  let reaches_from start =
    let seen = Hashtbl.create 16 in
    let rec go name =
      if not (Hashtbl.mem seen name) then (
        Hashtbl.add seen name ();
        match find schema name with
        | Some d -> List.iter (fun p -> go p.child) d.particles
        | None -> ())
    in
    (match find schema start with
    | Some d -> List.iter (fun p -> go p.child) d.particles
    | None -> ());
    seen
  in
  List.filter_map
    (fun (name, _) -> if Hashtbl.mem (reaches_from name) name then Some name else None)
    schema.decls

let is_recursive schema = recursive_names schema <> []

(** Pretty print, one line per declaration. *)
let to_string schema =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "root: %s\n" schema.root);
  List.iter
    (fun (_, d) ->
      let kids =
        String.concat ", "
          (List.map (fun p -> Printf.sprintf "%s{%s}" p.child (occurs_name p.occurs)) d.particles)
      in
      Buffer.add_string b
        (Printf.sprintf "%s: %s(%s)%s%s\n" d.name (model_group_name d.group) kids
           (if d.has_text then " +text" else "")
           (if d.attrs = [] then "" else " @" ^ String.concat ",@" d.attrs)))
    schema.decls;
  Buffer.contents b
