(** DTD-lite parser: a practical subset of XML 1.0 element declarations,
    enough to register structural information the way the paper's §3.2
    sources it from DTDs.

    Supported syntax:
    {v
      <!ELEMENT dept (dname, loc?, employees)>
      <!ELEMENT employees (emp* )>
      <!ELEMENT emp (empno, ename, sal)>
      <!ELEMENT empno (#PCDATA)>
      <!ELEMENT choice-el (a | b | c)>
      <!ATTLIST emp id CDATA #REQUIRED>
    v}
    The first ELEMENT declaration names the root.  Mixed content
    "(#PCDATA | a)" with a star suffix sets both [has_text] and child
    particles with unbounded cardinality. *)

open Types

exception Dtd_error of string

type tok = Word of string | Lparen | Rparen | Comma | Pipe | Star | Plus | Quest

let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let is_word c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' | '#' -> true
    | _ -> false
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_word c then (
      let start = !i in
      while !i < n && is_word s.[!i] do
        incr i
      done;
      out := Word (String.sub s start (!i - start)) :: !out)
    else (
      (match c with
      | '(' -> out := Lparen :: !out
      | ')' -> out := Rparen :: !out
      | ',' -> out := Comma :: !out
      | '|' -> out := Pipe :: !out
      | '*' -> out := Star :: !out
      | '+' -> out := Plus :: !out
      | '?' -> out := Quest :: !out
      | c -> raise (Dtd_error (Printf.sprintf "unexpected character %C in content model" c)));
      incr i)
  done;
  List.rev !out

let occurs_of_suffix toks =
  match toks with
  | Star :: rest -> (many, rest)
  | Plus :: rest -> (one_or_more, rest)
  | Quest :: rest -> (optional, rest)
  | rest -> (exactly_one, rest)

(* Parse "(a, b*, c?)" or "(a | b)" or "(#PCDATA)" or "(#PCDATA | a)*" *)
let parse_content_model model =
  let toks = tokenize model in
  match toks with
  | [ Word "EMPTY" ] -> (Sequence, [], false)
  | [ Word "ANY" ] -> (Sequence, [], true)
  | Lparen :: rest ->
      let items = ref [] in
      let seps = ref [] in
      let rec go toks =
        match toks with
        | Word w :: rest ->
            let occurs, rest = occurs_of_suffix rest in
            items := (w, occurs) :: !items;
            continue rest
        | _ -> raise (Dtd_error ("cannot parse content model: " ^ model))
      and continue = function
        | Comma :: rest ->
            seps := `Seq :: !seps;
            go rest
        | Pipe :: rest ->
            seps := `Choice :: !seps;
            go rest
        | Rparen :: rest -> (
            (* optional occurrence suffix on the whole group, then EOF *)
            match snd (occurs_of_suffix rest) with
            | [] -> ()
            | _ -> raise (Dtd_error ("trailing tokens in content model: " ^ model)))
        | [] -> raise (Dtd_error ("unterminated content model: " ^ model))
        | _ -> raise (Dtd_error ("cannot parse content model: " ^ model))
      in
      go rest;
      let items = List.rev !items in
      let seps = List.rev !seps in
      let group =
        if List.exists (( = ) `Choice) seps then
          if List.exists (( = ) `Seq) seps then
            raise (Dtd_error "mixed ',' and '|' in one group is not supported")
          else Choice
        else Sequence
      in
      let has_text = List.exists (fun (w, _) -> w = "#PCDATA") items in
      let outer_star =
        (* "(#PCDATA | a)*" — repeated mixed group means children are many *)
        String.length (String.trim model) > 0 && String.trim model <> "" &&
        (let t = String.trim model in
         t.[String.length t - 1] = '*')
      in
      let particles =
        List.filter_map
          (fun (w, occurs) ->
            if w = "#PCDATA" then None
            else Some { child = w; occurs = (if outer_star then many else occurs) })
          items
      in
      (group, particles, has_text)
  | _ -> raise (Dtd_error ("cannot parse content model: " ^ model))

(** [parse s] parses a DTD-lite string into a {!Types.t}.  The first
    [<!ELEMENT …>] names the root. *)
let parse s =
  let decls = ref [] in
  let attlists : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  let root = ref None in
  let len = String.length s in
  let i = ref 0 in
  let read_decl () =
    (* s.[!i] is at "<!" *)
    match String.index_from_opt s !i '>' with
    | None -> raise (Dtd_error "unterminated declaration")
    | Some close ->
        let body = String.sub s !i (close - !i + 1) in
        i := close + 1;
        body
  in
  while !i < len do
    if !i + 1 < len && s.[!i] = '<' && s.[!i + 1] = '!' then (
      let body = read_decl () in
      let words =
        String.split_on_char ' '
          (String.map (function '\n' | '\t' | '\r' -> ' ' | c -> c) body)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | "<!ELEMENT" :: name :: rest ->
          let model = String.concat " " rest in
          let model = String.sub model 0 (String.length model - 1) (* drop '>' *) in
          let group, particles, has_text = parse_content_model (String.trim model) in
          if !root = None then root := Some name;
          decls := { name; group; particles; has_text; attrs = [] } :: !decls
      | "<!ATTLIST" :: name :: attr :: _ ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt attlists name) in
          Hashtbl.replace attlists name (existing @ [ attr ])
      | _ -> raise (Dtd_error ("unrecognised declaration: " ^ body)))
    else incr i
  done;
  match !root with
  | None -> raise (Dtd_error "no <!ELEMENT> declarations found")
  | Some root ->
      let decls =
        List.rev_map
          (fun d -> { d with attrs = Option.value ~default:[] (Hashtbl.find_opt attlists d.name) })
          !decls
      in
      make ~root decls
