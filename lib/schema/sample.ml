(** Sample XML document generation (paper §4.2).

    From the structural information we build one XML document that captures
    structure but no content values.  Elements are annotated with attributes
    in the Oracle-XDB-style namespace so the partial evaluator can read the
    model group, cardinality and recursion marks off the instance:

    - [xdb:group]     — "sequence" | "choice" | "all"
    - [xdb:occurs]    — "one" | "optional" | "many" | "one-or-more"
    - [xdb:recursive] — "true" on the repeat of a recursive element

    Recursive structures are expanded exactly once and the repeat is marked
    (the paper's §7.2 future-work item, implemented here). *)

module X = Xdb_xml.Types
open Types

let annot = "structural sample"

let xdb_attr name value =
  X.make (X.Attribute ({ X.prefix = "xdb"; uri = X.xdb_uri; local = name }, value))

(** [generate schema] builds the annotated sample document. *)
let generate (schema : t) : X.node =
  let recursive = recursive_names schema in
  let rec build ~path name occurs =
    let decl = find_exn schema name in
    let el = X.make (X.Element (X.qname name)) in
    X.add_attribute el (xdb_attr "group" (model_group_name decl.group));
    X.add_attribute el (xdb_attr "occurs" (occurs_name occurs));
    List.iter (fun a -> X.add_attribute el (X.make (X.Attribute (X.qname a, annot)))) decl.attrs;
    if List.mem name path then
      (* repeat of a recursive element: mark and stop expanding *)
      X.add_attribute el (xdb_attr "recursive" "true")
    else (
      if List.mem name recursive then X.add_attribute el (xdb_attr "cyclic" "true");
      List.iter
        (fun p ->
          let child = build ~path:(name :: path) p.child p.occurs in
          X.append_child el child)
        decl.particles;
      if decl.has_text then X.append_child el (X.make (X.Text annot)));
    el
  in
  let root = build ~path:[] schema.root exactly_one in
  let doc = X.make X.Document in
  X.append_child doc root;
  X.reindex doc;
  doc

(** Read the annotations back from a sample-document element. *)
let group_of_element el =
  match X.attribute ~uri:X.xdb_uri el "group" with
  | Some "choice" -> Choice
  | Some "all" -> All
  | _ -> Sequence

let occurs_of_element el =
  match X.attribute ~uri:X.xdb_uri el "occurs" with
  | Some "one" -> exactly_one
  | Some "optional" -> optional
  | Some "one-or-more" -> one_or_more
  | _ -> many

let is_recursive_element el = X.attribute ~uri:X.xdb_uri el "recursive" = Some "true"
