(** DTD-lite parser: a practical subset of XML 1.0 element declarations —
    the paper's §3.2 "XML schema or DTD" structural-information source.

    Supports [<!ELEMENT n (children)>] with [,]/[|] groups and [*]/[+]/[?]
    occurrence suffixes, [#PCDATA], [EMPTY], [ANY], and [<!ATTLIST>]
    attribute names.  The first element declaration names the root. *)

exception Dtd_error of string

val parse : string -> Types.t
(** @raise Dtd_error on unsupported or malformed declarations. *)
