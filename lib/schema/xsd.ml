(** XML Schema (XSD) subset parser — the paper's first structural
    information source (§3.2: "If the input XMLType is from XMLType table
    or columns with XML schema or DTD information").

    Supported constructs:
    - global and local [xs:element] with [name]/[type]/[ref],
      [minOccurs]/[maxOccurs];
    - [xs:complexType] (global named or anonymous inline) with one
      [xs:sequence], [xs:choice] or [xs:all] model group — the exact
      §3.4 distinction driving Tables 12–14;
    - [xs:attribute] declarations (names only);
    - [xs:simpleType] / built-in [xs:*] types ⇒ text content;
    - [mixed="true"] ⇒ text content alongside children.

    The first global element declaration is the root.  Identity
    constraints, substitution groups, facets, namespaces-per-element and
    imports are out of scope. *)

module X = Xdb_xml.Types
open Types

exception Xsd_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Xsd_error m)) fmt

let xs_uri = "http://www.w3.org/2001/XMLSchema"

let is_xs el name =
  match el.X.kind with
  | X.Element q -> String.equal q.X.uri xs_uri && String.equal q.X.local name
  | _ -> false

let xs_local el =
  match el.X.kind with
  | X.Element q when String.equal q.X.uri xs_uri -> Some q.X.local
  | _ -> None

let attr = X.attribute

let strip_prefix name =
  match String.index_opt name ':' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let occurs_of el =
  let min_occurs =
    match attr el "minOccurs" with
    | Some s -> ( try int_of_string s with _ -> err "bad minOccurs %S" s)
    | None -> 1
  in
  let max_occurs =
    match attr el "maxOccurs" with
    | Some "unbounded" -> None
    | Some s -> ( try Some (int_of_string s) with _ -> err "bad maxOccurs %S" s)
    | None -> Some 1
  in
  { min_occurs; max_occurs }

type ct_body = {
  ct_group : model_group;
  ct_particles : (string (* element name *) * occurs * X.node option (* inline decl *)) list;
  ct_text : bool;
  ct_attrs : string list;
}

(* parse the body of a complexType element *)
let parse_complex_type ct_el : ct_body =
  let mixed = attr ct_el "mixed" = Some "true" in
  let group = ref Sequence in
  let particles = ref [] in
  let attrs = ref [] in
  List.iter
    (fun child ->
      match xs_local child with
      | Some (("sequence" | "choice" | "all") as g) ->
          group := (match g with "choice" -> Choice | "all" -> All | _ -> Sequence);
          List.iter
            (fun p ->
              if is_xs p "element" then
                let name =
                  match (attr p "name", attr p "ref") with
                  | Some n, _ -> n
                  | None, Some r -> strip_prefix r
                  | None, None -> err "xs:element needs name or ref"
                in
                particles := (name, occurs_of p, Some p) :: !particles
              else
                match xs_local p with
                | Some other -> err "unsupported particle xs:%s" other
                | None -> ())
            child.X.children
      | Some "attribute" -> (
          match attr child "name" with
          | Some n -> attrs := n :: !attrs
          | None -> ())
      | Some ("annotation" | "anyAttribute") -> ()
      | Some other -> err "unsupported xs:complexType child xs:%s" other
      | None -> ())
    ct_el.X.children;
  {
    ct_group = !group;
    ct_particles = List.rev !particles;
    ct_text = mixed;
    ct_attrs = List.rev !attrs;
  }

(** [parse s] — schema from XSD source text. *)
let parse (s : string) : t =
  let doc = Xdb_xml.Parser.parse s in
  let root_el = Xdb_xml.Parser.document_element doc in
  if not (is_xs root_el "schema") then err "document element must be xs:schema";
  (* named complex types *)
  let named_types : (string, ct_body) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun child ->
      if is_xs child "complexType" then
        match attr child "name" with
        | Some n -> Hashtbl.replace named_types n (parse_complex_type child)
        | None -> err "top-level xs:complexType needs a name")
    root_el.X.children;
  let decls : (string, element_decl) Hashtbl.t = Hashtbl.create 16 in
  let rec declare_element el =
    let name =
      match attr el "name" with Some n -> n | None -> err "xs:element needs a name here"
    in
    if Hashtbl.mem decls name then ()
    else begin
      (* reserve the slot to terminate recursive references *)
      Hashtbl.replace decls name (leaf name);
      let body =
        match attr el "type" with
        | Some t -> (
            let t' = strip_prefix t in
            match Hashtbl.find_opt named_types t' with
            | Some ct -> Some ct
            | None ->
                (* xs:string etc. — simple content *)
                None)
        | None -> (
            match List.find_opt (fun c -> is_xs c "complexType") el.X.children with
            | Some ct -> Some (parse_complex_type ct)
            | None -> None)
      in
      match body with
      | None -> Hashtbl.replace decls name (leaf name)
      | Some ct ->
          let particles =
            List.map
              (fun (child_name, occurs, inline) ->
                (match inline with
                | Some p when attr p "name" <> None -> declare_element p
                | _ ->
                    (* reference to a global element: declared in the loop *)
                    ());
                { child = child_name; occurs })
              ct.ct_particles
          in
          Hashtbl.replace decls name
            {
              name;
              group = ct.ct_group;
              particles;
              has_text = ct.ct_text;
              attrs = ct.ct_attrs;
            }
    end
  in
  let root = ref None in
  List.iter
    (fun child ->
      if is_xs child "element" then (
        (match attr child "name" with
        | Some n -> if !root = None then root := Some n
        | None -> err "global xs:element needs a name");
        declare_element child))
    root_el.X.children;
  match !root with
  | None -> err "no global element declarations"
  | Some root ->
      (* validate references *)
      let all = Hashtbl.fold (fun _ d acc -> d :: acc) decls [] in
      List.iter
        (fun d ->
          List.iter
            (fun p ->
              if not (Hashtbl.mem decls p.child) then
                err "element %s references undeclared element %s" d.name p.child)
            d.particles)
        all;
      make ~root all
