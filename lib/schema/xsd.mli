(** XML Schema (XSD) subset parser — the paper's primary structural
    information source (§3.2): global/local [xs:element] with
    [minOccurs]/[maxOccurs], named and anonymous [xs:complexType] with one
    [xs:sequence]/[xs:choice]/[xs:all] group, [xs:attribute] names,
    [mixed] content.  The first global element is the root. *)

exception Xsd_error of string

val parse : string -> Types.t
(** @raise Xsd_error on unsupported constructs or dangling references. *)
