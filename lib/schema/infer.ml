(** Schema inference from instance documents.

    Used for the paper's "XMLType table or column without registered
    schema" fallback and heavily in tests: scan one or more documents and
    derive element declarations with observed model groups and
    cardinalities.  Inference is conservative: child order differences
    demote [Sequence] to [All]; multiple occurrences of a child under one
    parent promote its cardinality to [many]. *)

module X = Xdb_xml.Types
open Types

type acc = {
  mutable child_order : string list;  (** first-seen child name order *)
  mutable maxima : (string * int) list;  (** max occurrences seen per child *)
  mutable minima : (string * int) list;  (** min occurrences seen per child *)
  mutable saw_text : bool;
  mutable ordered : bool;  (** children always appeared in first-seen order *)
  mutable attrs : string list;
  mutable instances : int;
}

let fresh () =
  {
    child_order = [];
    maxima = [];
    minima = [];
    saw_text = false;
    ordered = true;
    attrs = [];
    instances = 0;
  }

let bump assoc key v combine =
  match List.assoc_opt key assoc with
  | None -> (key, v) :: assoc
  | Some old -> (key, combine old v) :: List.remove_assoc key assoc

let is_subsequence sub full =
  let rec go sub full =
    match (sub, full) with
    | [], _ -> true
    | _, [] -> false
    | s :: sr, f :: fr -> if s = f then go sr fr else go sub fr
  in
  go sub full

(** [infer ~root docs] scans element trees and produces a schema. *)
let infer ?root docs =
  let table : (string, acc) Hashtbl.t = Hashtbl.create 16 in
  let get name =
    match Hashtbl.find_opt table name with
    | Some a -> a
    | None ->
        let a = fresh () in
        Hashtbl.add table name a;
        a
  in
  let first_root = ref None in
  let rec scan el =
    match el.X.kind with
    | X.Element q ->
        if !first_root = None then first_root := Some q.local;
        let a = get q.local in
        a.instances <- a.instances + 1;
        let child_elems =
          List.filter_map
            (fun c -> match c.X.kind with X.Element cq -> Some cq.local | _ -> None)
            el.X.children
        in
        let counts =
          List.fold_left (fun acc n -> bump acc n 1 ( + )) [] child_elems
        in
        (* record first-seen order *)
        List.iter
          (fun n -> if not (List.mem n a.child_order) then a.child_order <- a.child_order @ [ n ])
          child_elems;
        (* order check: de-duplicated child sequence must be a subsequence of
           the canonical order *)
        let dedup =
          List.fold_left (fun acc n -> if List.mem n acc then acc else acc @ [ n ]) [] child_elems
        in
        if not (is_subsequence dedup a.child_order) then a.ordered <- false;
        List.iter (fun (n, c) -> a.maxima <- bump a.maxima n c max) counts;
        (* minima: children absent in this instance get 0 *)
        a.minima <-
          List.map
            (fun n ->
              let c = Option.value ~default:0 (List.assoc_opt n counts) in
              match List.assoc_opt n a.minima with
              | None -> (n, c)
              | Some old -> (n, min old c))
            a.child_order;
        if List.exists (fun c -> match c.X.kind with
             | X.Text t -> String.trim t <> ""
             | _ -> false) el.X.children
        then a.saw_text <- true;
        List.iter
          (fun at ->
            match at.X.kind with
            | X.Attribute (aq, _) when aq.uri <> X.xmlns_uri ->
                if not (List.mem aq.local a.attrs) then a.attrs <- a.attrs @ [ aq.local ]
            | _ -> ())
          el.X.attributes;
        List.iter scan el.X.children
    | X.Document -> List.iter scan el.X.children
    | _ -> ()
  in
  List.iter scan docs;
  let root =
    match (root, !first_root) with
    | Some r, _ -> r
    | None, Some r -> r
    | None, None -> raise (Schema_error "cannot infer a schema from no elements")
  in
  let decls =
    Hashtbl.fold
      (fun name a acc ->
        let particles =
          List.map
            (fun child ->
              let mx = Option.value ~default:1 (List.assoc_opt child a.maxima) in
              let mn = Option.value ~default:0 (List.assoc_opt child a.minima) in
              let occurs =
                if mx > 1 then if mn >= 1 then one_or_more else many
                else if mn >= 1 then exactly_one
                else optional
              in
              { child; occurs })
            a.child_order
        in
        let group = if a.ordered then Sequence else All in
        { name; group; particles; has_text = a.saw_text; attrs = a.attrs } :: acc)
      table []
  in
  make ~root decls
